"""Graph nodes: a single operator application inside a model.

A :class:`Node` references its input and output *values* by name.  Values
are the edges of the computation graph; their types are recorded on the
owning :class:`repro.graph.model.Model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence


#: Attribute values allowed on a node: ints, floats, bools, strings and
#: (possibly nested) lists of those.  Tensors never appear as attributes;
#: constant tensors are modelled as graph initializers instead.
AttrValue = Any


@dataclass
class Node:
    """One operator application.

    Attributes:
        op: operator kind, e.g. ``"Conv2d"`` or ``"Add"``.
        name: unique node name within the model.
        inputs: names of the input values, in positional order.
        outputs: names of the output values, in positional order.
        attrs: operator attributes (kernel sizes, axes, target shapes, ...).
    """

    op: str
    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.inputs = list(self.inputs)
        self.outputs = list(self.outputs)
        self.attrs = dict(self.attrs)

    def attr(self, key: str, default: AttrValue = None) -> AttrValue:
        """Fetch an attribute with an optional default."""
        return self.attrs.get(key, default)

    def with_attrs(self, **updates: AttrValue) -> "Node":
        """Return a copy of this node with some attributes replaced."""
        merged = dict(self.attrs)
        merged.update(updates)
        return Node(self.op, self.name, list(self.inputs), list(self.outputs), merged)

    def clone(self) -> "Node":
        """Deep-enough copy: lists and the attribute dict are duplicated."""
        return Node(
            self.op,
            self.name,
            list(self.inputs),
            list(self.outputs),
            _clone_attrs(self.attrs),
        )

    def signature(self) -> str:
        """A stable textual summary used for operator-instance counting.

        Two nodes with the same operator kind and the same attributes map to
        the same signature.  Input types are appended by callers that want
        the paper's "unique operator instance" notion (Figure 9).
        """
        attr_text = ",".join(f"{k}={self.attrs[k]!r}" for k in sorted(self.attrs))
        return f"{self.op}({attr_text})"

    def __str__(self) -> str:
        ins = ", ".join(self.inputs)
        outs = ", ".join(self.outputs)
        return f"{outs} = {self.op}[{self.name}]({ins})"


def _clone_attrs(attrs: Mapping[str, AttrValue]) -> Dict[str, AttrValue]:
    cloned: Dict[str, AttrValue] = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            cloned[key] = list(value)
        elif isinstance(value, tuple):
            cloned[key] = tuple(value)
        else:
            cloned[key] = value
    return cloned


def unique_name(base: str, taken: Sequence[str]) -> str:
    """Generate a name not present in ``taken`` by appending a counter."""
    if base not in taken:
        return base
    index = 1
    existing = set(taken)
    while f"{base}_{index}" in existing:
        index += 1
    return f"{base}_{index}"
