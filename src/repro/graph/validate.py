"""Model validation: the "type checker" a DL compiler runs on import.

A model is *valid* when every node's recorded output types agree with the
types inferred from its inputs and attributes, every referenced value exists,
and the graph is acyclic.  This is the property NNSmith's constraint-based
generator guarantees by construction, and the property the baselines
(LEMON, GraphFuzzer) preserve only by restricting the operators they use.
"""

from __future__ import annotations

from typing import List

from repro.errors import GraphError, ShapeInferenceError, TypeCheckError
from repro.graph.model import Model
from repro.graph.node import Node
from repro.ops.shape_infer import infer_output_types


def validate_model(model: Model) -> None:
    """Raise :class:`TypeCheckError` (or :class:`GraphError`) if invalid."""
    errors = validation_errors(model)
    if errors:
        raise TypeCheckError("; ".join(errors))


def is_valid(model: Model) -> bool:
    """True when :func:`validate_model` would pass."""
    return not validation_errors(model)


def node_label(model: Model, node: Node) -> str:
    """``node #<index> <name> (<op>)`` — the prefix of every per-node problem.

    The index is the node's position in ``model.nodes``, so multi-error
    reports (and verifier diffs across pass boundaries) stay attributable
    even when several nodes share an operator kind.
    """
    for index, candidate in enumerate(model.nodes):
        if candidate is node:
            return f"node #{index} {node.name} ({node.op})"
    return f"node #? {node.name} ({node.op})"


def validation_errors(model: Model) -> List[str]:
    """Collect every validation problem instead of stopping at the first."""
    problems: List[str] = []

    acyclic = True
    try:
        ordered = list(model.topological_order())
    except GraphError as exc:
        problems.append(str(exc))
        # A cycle defeats the def-before-use check, but every other
        # structural check is order-independent: recover with the recorded
        # node order instead of swallowing the remaining problems.
        acyclic = False
        ordered = list(model.nodes)

    produced = set(model.inputs) | set(model.initializers)
    for node in ordered:
        label = node_label(model, node)
        for input_name in node.inputs:
            if input_name not in model.value_types:
                problems.append(f"{label}: unknown input {input_name!r}")
            elif acyclic and input_name not in produced:
                problems.append(
                    f"{label}: input {input_name!r} used before production")
        input_types = []
        try:
            input_types = [model.type_of(name) for name in node.inputs]
        except GraphError:
            continue
        try:
            inferred = infer_output_types(node, input_types)
        except ShapeInferenceError as exc:
            problems.append(f"{label}: {exc}")
            continue
        if len(inferred) != len(node.outputs):
            problems.append(
                f"{label}: produces {len(node.outputs)} values but "
                f"inference yields {len(inferred)}")
            continue
        for output_name, expected in zip(node.outputs, inferred):
            recorded = model.value_types.get(output_name)
            if recorded is None:
                problems.append(f"{label}: undeclared output {output_name!r}")
            elif recorded != expected:
                problems.append(
                    f"{label}: output {output_name!r} recorded as "
                    f"{recorded} but inferred as {expected}")
            produced.add(output_name)

    for output_name in model.outputs:
        if output_name not in model.value_types:
            problems.append(f"graph output {output_name!r} is not a known value")
    return problems
