"""The computation-graph model: the repo's equivalent of an ONNX ModelProto.

A :class:`Model` is a directed acyclic graph of :class:`~repro.graph.node.Node`
operators over named *values*.  Each value has a concrete
:class:`~repro.graph.tensor_type.TensorType`.  Values come in three flavours:

* **graph inputs** — provided by the caller at run time,
* **initializers** — constant tensors baked into the model (weights),
* **intermediate values** — produced by nodes.

Any value can be designated a **graph output**.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.errors import GraphError
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType


class Model:
    """A typed DNN computation graph."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.value_types: Dict[str, TensorType] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.initializers: Dict[str, np.ndarray] = {}
        #: Bumped by every structural mutation through the Model API; cached
        #: per-model execution plans (:mod:`repro.core.cache`) validate
        #: against it.  Replacing an *initializer value* under an existing
        #: name is not structural; rewiring nodes directly without the Model
        #: helpers bypasses the counter (don't).
        self.structure_version = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_input(self, name: str, ttype: TensorType) -> str:
        """Declare a graph input value."""
        self._declare_value(name, ttype)
        if name in self.inputs:
            raise GraphError(f"duplicate graph input {name!r}")
        self.inputs.append(name)
        self.structure_version += 1
        return name

    def add_initializer(self, name: str, data: np.ndarray) -> str:
        """Declare a constant tensor (model weight)."""
        array = np.asarray(data)
        from repro.dtypes import DType

        ttype = TensorType(array.shape, DType.from_numpy(array.dtype))
        self._declare_value(name, ttype)
        self.initializers[name] = array
        self.structure_version += 1
        return name

    def add_node(self, node: Node, output_types: Sequence[TensorType]) -> Node:
        """Append a node, declaring its output value types.

        Inputs of the node must already exist as values of the model.
        """
        if len(node.outputs) != len(output_types):
            raise GraphError(
                f"node {node.name!r} declares {len(node.outputs)} outputs but "
                f"{len(output_types)} output types were provided"
            )
        for input_name in node.inputs:
            if input_name not in self.value_types:
                raise GraphError(
                    f"node {node.name!r} references unknown value {input_name!r}"
                )
        for output_name, ttype in zip(node.outputs, output_types):
            self._declare_value(output_name, ttype)
        self.nodes.append(node)
        self.structure_version += 1
        return node

    def mark_output(self, name: str) -> None:
        """Designate an existing value as a graph output."""
        if name not in self.value_types:
            raise GraphError(f"cannot mark unknown value {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)
            self.structure_version += 1

    def _declare_value(self, name: str, ttype: TensorType) -> None:
        if name in self.value_types:
            raise GraphError(f"value {name!r} is already declared")
        self.value_types[name] = ttype

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def type_of(self, name: str) -> TensorType:
        """Type of a value; raises :class:`GraphError` if unknown."""
        try:
            return self.value_types[name]
        except KeyError:
            raise GraphError(f"unknown value {name!r}") from None

    def producer_map(self) -> Dict[str, Node]:
        """Map from value name to the node producing it (inputs/weights absent)."""
        producers: Dict[str, Node] = {}
        for node in self.nodes:
            for output in node.outputs:
                producers[output] = node
        return producers

    def consumer_map(self) -> Dict[str, List[Node]]:
        """Map from value name to the list of nodes consuming it."""
        consumers: Dict[str, List[Node]] = {name: [] for name in self.value_types}
        for node in self.nodes:
            for input_name in node.inputs:
                consumers.setdefault(input_name, []).append(node)
        return consumers

    def is_constant(self, name: str) -> bool:
        """True if the value is an initializer (a model weight)."""
        return name in self.initializers

    def intermediate_values(self) -> List[str]:
        """Values produced by nodes (i.e. neither inputs nor initializers)."""
        produced = []
        for node in self.nodes:
            produced.extend(node.outputs)
        return produced

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r}")

    def fresh_value_name(self, base: str = "v") -> str:
        index = len(self.value_types)
        while f"{base}{index}" in self.value_types:
            index += 1
        return f"{base}{index}"

    def fresh_node_name(self, base: str) -> str:
        taken = {node.name for node in self.nodes}
        if base not in taken:
            return base
        index = 1
        while f"{base}_{index}" in taken:
            index += 1
        return f"{base}_{index}"

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[Node]:
        """Nodes in an order where producers precede consumers.

        Raises:
            GraphError: if the graph contains a cycle.
        """
        producers = self.producer_map()
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[Node]] = {}
        for node in self.nodes:
            count = 0
            for input_name in node.inputs:
                producer = producers.get(input_name)
                if producer is not None:
                    count += 1
                    dependents.setdefault(producer.name, []).append(node)
            indegree[node.name] = count

        ready = [node for node in self.nodes if indegree[node.name] == 0]
        ordered: List[Node] = []
        while ready:
            node = ready.pop()
            ordered.append(node)
            for dependent in dependents.get(node.name, []):
                indegree[dependent.name] -= 1
                if indegree[dependent.name] == 0:
                    ready.append(dependent)
        if len(ordered) != len(self.nodes):
            raise GraphError("computation graph contains a cycle")
        return ordered

    def is_connected(self) -> bool:
        """True if the underlying undirected graph has a single component."""
        if not self.nodes:
            return True
        adjacency: Dict[str, Set[str]] = {}

        def link(a: str, b: str) -> None:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        for node in self.nodes:
            for value in list(node.inputs) + list(node.outputs):
                link(f"node:{node.name}", f"value:{value}")

        start = f"node:{self.nodes[0].name}"
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        node_keys = {f"node:{node.name}" for node in self.nodes}
        return node_keys.issubset(seen)

    def clone(self) -> "Model":
        """Deep copy of the model (weights are copied too)."""
        copy = Model(self.name)
        copy.nodes = [node.clone() for node in self.nodes]
        copy.value_types = dict(self.value_types)
        copy.inputs = list(self.inputs)
        copy.outputs = list(self.outputs)
        copy.initializers = {k: np.array(v, copy=True) for k, v in self.initializers.items()}
        return copy

    # ------------------------------------------------------------------ #
    # Mutation helpers used by optimization passes
    # ------------------------------------------------------------------ #
    def remove_node(self, node: Node) -> None:
        """Remove a node and the type entries of its now-unproduced outputs."""
        self.nodes = [n for n in self.nodes if n.name != node.name]
        consumed = {name for n in self.nodes for name in n.inputs}
        for output in node.outputs:
            if output in self.outputs or output in consumed:
                continue
            self.value_types.pop(output, None)
        self.structure_version += 1

    def replace_uses(self, old: str, new: str) -> None:
        """Rewire every consumer (and graph output) of ``old`` to use ``new``."""
        for node in self.nodes:
            node.inputs = [new if name == old else name for name in node.inputs]
        self.outputs = [new if name == old else name for name in self.outputs]
        self.structure_version += 1

    def prune_dead_nodes(self) -> int:
        """Remove nodes whose outputs are never used.  Returns removal count."""
        removed_total = 0
        while True:
            consumed = {name for node in self.nodes for name in node.inputs}
            live_outputs = set(self.outputs)
            dead = [
                node
                for node in self.nodes
                if not any(out in consumed or out in live_outputs for out in node.outputs)
            ]
            if not dead:
                return removed_total
            for node in dead:
                self.remove_node(node)
            removed_total += len(dead)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable multi-line description of the graph."""
        lines = [f"model {self.name}:"]
        for name in self.inputs:
            lines.append(f"  input  {name}: {self.value_types[name]}")
        for name in self.initializers:
            lines.append(f"  weight {name}: {self.value_types[name]}")
        for node in self.nodes:
            lines.append(f"  {node}")
        for name in self.outputs:
            lines.append(f"  output {name}: {self.value_types[name]}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        return (
            f"Model({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )
