"""The seeded verifier-only bug is visible to exactly one observer.

``graphrt-biassoftmax-fusion-note`` makes BiasSoftmaxFusion leave a
provenance attribute on the fused node: the IR still executes
bit-identically, so crash/difftest/perf/gradcheck oracles all see a clean
run.  Only the pass-boundary verifier (``--verify-passes``) reports it —
and with the flag off, campaign behavior must stay bit-identical to
historical runs (no new triggered bugs, no new findings, same dedup keys).
"""

import numpy as np
import pytest

from repro.compilers.base import build_compiler_set, registered_compilers
from repro.compilers.bugs import BugConfig, bug_spec
from repro.core.difftest import DifferentialTester
from repro.core.oracle import build_oracle
from repro.errors import IRVerificationError
from repro.experiments.pass_bisect import bisect_finding
from repro.graph.builder import GraphBuilder

BUG = "graphrt-biassoftmax-fusion-note"


def bias_softmax_model():
    builder = GraphBuilder("bias_softmax")
    x = builder.input((2, 8), name="x")
    bias = builder.weight(
        np.linspace(-1.0, 1.0, 16, dtype=np.float32).reshape(2, 8))
    added = builder.op1("Add", [x, bias])
    builder.output(builder.op1("Softmax", [added], axis=1))
    return builder.build()


def inputs_for(model):
    from repro.runtime.interpreter import random_inputs
    return random_inputs(model, np.random.default_rng(7))


def test_bug_is_registered_with_verifier_symptom():
    spec = bug_spec(BUG)
    assert spec.symptom == "verifier"
    assert spec.phase == "transformation"


def test_invisible_without_verifier():
    """With --verify-passes off the bug leaves no observable trace at all:
    no crash, no mismatch, no triggered-bug record (bit-identity)."""
    bugs = BugConfig.all()
    tester = DifferentialTester(
        build_compiler_set(registered_compilers(), bugs=bugs), bugs=bugs)
    model = bias_softmax_model()
    case = tester.run_case(model, inputs=inputs_for(model))
    for verdict in case.verdicts:
        assert verdict.status == "ok", (verdict.compiler, verdict.message)
        assert BUG not in verdict.triggered_bugs


@pytest.mark.parametrize("oracle_name", ["difftest", "crash", "shape"])
def test_execution_based_oracles_blind(oracle_name):
    bugs = BugConfig.all()
    oracle = build_oracle(oracle_name,
                          build_compiler_set(registered_compilers(),
                                             bugs=bugs), bugs=bugs)
    model = bias_softmax_model()
    case = oracle.run_case(model, inputs=inputs_for(model))
    assert all(BUG not in verdict.triggered_bugs
               for verdict in case.verdicts)
    assert all(verdict.status != "verifier" for verdict in case.verdicts)


def test_verifier_detects_and_attributes():
    bugs = BugConfig.all()
    tester = DifferentialTester(
        build_compiler_set(registered_compilers(), bugs=bugs,
                           verify_passes=True), bugs=bugs)
    model = bias_softmax_model()
    case = tester.run_case(model, inputs=inputs_for(model))
    verdict = next(v for v in case.verdicts if v.compiler == "graphrt")
    assert verdict.status == "verifier"
    assert verdict.phase == "transformation"
    assert BUG in verdict.triggered_bugs
    assert "after pass BiasSoftmaxFusion" in verdict.message
    assert "unknown attribute fused_from" in verdict.message
    # The dedup key carries the bug id, not the per-case message detail.
    assert verdict.dedup_key() == f"graphrt|verifier|transformation|{BUG}"
    # The other compilers are untouched by graphrt's buggy pass.
    assert all(v.status == "ok" for v in case.verdicts
               if v.compiler != "graphrt")


def test_disabled_bug_verifies_clean():
    """The verifier itself has no false positive on this model: with the
    bug disabled, verify-enabled compilation succeeds."""
    bugs = BugConfig.none()
    compiler, = build_compiler_set(["graphrt"], bugs=bugs,
                                   verify_passes=True)
    model = bias_softmax_model()
    compiled = compiler.compile_model(model)
    outputs = compiled.run(inputs_for(model))
    assert all(np.isfinite(array).all() for array in outputs.values())


def test_pass_bisect_attributes_to_fusion_pass():
    model = bias_softmax_model()
    result = bisect_finding(model, "graphrt", "O2",
                            inputs=inputs_for(model), verify_passes=True)
    assert result.reproduced
    assert result.failure.status == "verifier"
    assert BUG in result.failure.bug_ids
    assert result.minimal == (("graphrt", "BiasSoftmaxFusion"),)


def test_bisect_without_verifier_reproduces_nothing():
    model = bias_softmax_model()
    result = bisect_finding(model, "graphrt", "O2",
                            inputs=inputs_for(model))
    assert not result.reproduced


def test_verifier_error_raised_at_compile_time():
    bugs = BugConfig.all()
    compiler, = build_compiler_set(["graphrt"], bugs=bugs,
                                   verify_passes=True)
    with pytest.raises(IRVerificationError) as excinfo:
        compiler.compile_model(bias_softmax_model())
    assert f"[{BUG}]" in str(excinfo.value)


def test_campaign_findings_bit_identical_with_verifier_off():
    """A short serial campaign with verify_passes=False produces exactly
    the same signature as one that never heard of the flag — and the
    verify-enabled twin differs only by verifier findings."""
    from repro.core.parallel import run_sharded_serial
    from repro.testing import campaign_signature, tiny_campaign_config

    baseline_config = tiny_campaign_config(iterations=6, seed=11)
    off_config = tiny_campaign_config(iterations=6, seed=11)
    off_config.verify_passes = False

    baseline = run_sharded_serial(baseline_config, 1)
    off = run_sharded_serial(off_config, 1)
    assert campaign_signature(off) == campaign_signature(baseline)

    on_config = tiny_campaign_config(iterations=6, seed=11)
    on_config.verify_passes = True
    on = run_sharded_serial(on_config, 1)
    # Verifier findings are additive: every non-verifier observation of
    # the verify-enabled run already exists in the baseline run.
    extra_keys = {key for report in on.reports
                  for key in [report.dedup_key()]} - \
        {report.dedup_key() for report in baseline.reports}
    assert all("|verifier|" in key for key in extra_keys)
    assert set(baseline.seeded_bugs_found) <= set(on.seeded_bugs_found)
    assert all(bug_spec(bug).symptom == "verifier"
               for bug in set(on.seeded_bugs_found)
               - set(baseline.seeded_bugs_found))
