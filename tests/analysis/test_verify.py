"""Per-invariant coverage of the stage-aware IR verifier.

Each of the three IR adapters (graphrt model IR, deepc graph IR, deepc low
IR) gets one deliberately ill-formed fixture per invariant, plus the
multi-error aggregation order is pinned: reports must list problems in
invariant registration order so verifier findings dedup deterministically.
"""

import numpy as np
import pytest

from repro.analysis.verify import (check_pass_boundary, register_invariant,
                                   registered_invariants, verify_ir)
from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.lowir import Buffer, Kernel, LowModule, TensorInstr
from repro.dtypes import DType
from repro.errors import IRVerificationError
from repro.graph.builder import GraphBuilder
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType


def build_model():
    builder = GraphBuilder("m")
    x = builder.input((2, 4), name="x")
    w = builder.weight(np.ones((2, 4), dtype=np.float32), name="w")
    added = builder.op1("Add", [x, w], name="add0")
    out = builder.op1("Relu", [added], name="relu0")
    builder.output(out)
    return builder.build()


def build_dgraph():
    graph = DGraph("g")
    graph.inputs = ["x"]
    graph.value_types["x"] = TensorType((2, 4), DType.float32)
    graph.nodes.append(Node("Relu", "relu0", ["x"], ["y"], {}))
    graph.value_types["y"] = TensorType((2, 4), DType.float32)
    graph.outputs = ["y"]
    return graph


def build_low_module():
    ttype = TensorType((4,), DType.float32)
    buffers = {"a": Buffer("a", ttype, "input"),
               "b": Buffer("b", ttype, "output")}
    instr = TensorInstr("Relu", "relu0", ["a"], ["b"], loop_extent=4)
    kernel = Kernel("k0", [instr], buffers, ["a"], ["b"])
    return LowModule("m", [kernel], ["a"], ["b"], {},
                     {"a": ttype, "b": ttype})


# --------------------------------------------------------------------------- #
# Well-formed fixtures verify clean
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("stage,build", [
    ("graphrt", build_model),
    ("deepc-graph", build_dgraph),
    ("deepc-low", build_low_module),
])
def test_well_formed_ir_has_no_problems(stage, build):
    assert verify_ir(stage, build()) == []
    check_pass_boundary(stage, build(), after="AnyPass")  # no raise


def test_unknown_stage_rejected():
    with pytest.raises(KeyError):
        verify_ir("mlir", build_model())
    with pytest.raises(KeyError):
        register_invariant("mlir", lambda ir: [])


# --------------------------------------------------------------------------- #
# graphrt model-IR invariants
# --------------------------------------------------------------------------- #
def test_dangling_input_reference():
    model = build_model()
    model.nodes[0].inputs[1] = "ghost"
    problems = verify_ir("graphrt", model)
    assert any("ghost" in p for p in problems)


def test_stale_recorded_type():
    model = build_model()
    add_output = model.nodes[0].outputs[0]
    model.value_types[add_output] = TensorType((9, 9), DType.float32)
    assert verify_ir("graphrt", model)


def test_duplicate_value_definition():
    model = build_model()
    first = model.nodes[0]
    model.nodes.append(Node("Relu", "dup", [first.inputs[0]],
                            [first.outputs[0]], {}))
    problems = verify_ir("graphrt", model)
    assert any("already produced by" in p for p in problems)


def test_duplicate_node_name():
    model = build_model()
    model.nodes[1].name = model.nodes[0].name
    problems = verify_ir("graphrt", model)
    assert any("duplicate node name" in p for p in problems)


def test_output_shadows_initializer():
    model = build_model()
    model.nodes[0].outputs[0] = "w"
    problems = verify_ir("graphrt", model)
    assert any("shadows a graph input/initializer" in p
               or "writes read-only value" in p for p in problems)


def test_unknown_attribute_outside_schema():
    model = build_model()
    model.nodes[0].attrs["debug_note"] = "oops"
    problems = verify_ir("graphrt", model)
    assert any("unknown attribute debug_note='oops' outside the Add schema"
               in p for p in problems)


def test_underscore_and_shared_attrs_exempt():
    model = build_model()
    model.nodes[0].attrs["_backend_hint"] = 3
    model.nodes[0].attrs["opset_unsupported"] = True
    assert verify_ir("graphrt", model) == []


def test_aliased_initializers():
    model = build_model()
    model.initializers["w2"] = model.initializers["w"]
    model.value_types["w2"] = model.value_types["w"]
    problems = verify_ir("graphrt", model)
    assert any("alias the same array object" in p for p in problems)


def test_input_declared_as_initializer():
    model = build_model()
    model.initializers["x"] = np.zeros((2, 4), dtype=np.float32)
    problems = verify_ir("graphrt", model)
    assert any("declared both graph input and initializer" in p
               for p in problems)


def test_unreachable_node_is_advisory_only():
    model = build_model()
    dead = model.fresh_value_name("dead")
    model.value_types[dead] = model.value_types["x"]
    model.nodes.append(Node("Relu", "dead_relu", ["x"], [dead], {}))
    # Not an error: mid-pipeline IRs legitimately carry dead nodes.
    assert verify_ir("graphrt", model) == []
    check_pass_boundary("graphrt", model, after="AnyPass")  # no raise
    advisory = verify_ir("graphrt", model, include_advisory=True)
    assert any("unreachable from any graph output" in p for p in advisory)


def test_multi_error_aggregation_order_pinned():
    """Problems appear in invariant registration order: structural errors
    first, then duplicate defs, then attribute conformance."""
    model = build_model()
    model.nodes[1].attrs["bogus"] = 1          # attribute-conformance
    model.nodes.append(Node("Relu", "dup", ["x"],
                            [model.nodes[0].outputs[0]], {}))  # duplicate def
    model.nodes[0].inputs[1] = "ghost"         # structure-and-types
    problems = verify_ir("graphrt", model)
    ghost = next(i for i, p in enumerate(problems) if "ghost" in p)
    dup = next(i for i, p in enumerate(problems)
               if "already produced by" in p)
    attr = next(i for i, p in enumerate(problems) if "bogus" in p)
    assert ghost < dup < attr


def test_boundary_error_names_the_pass():
    model = build_model()
    model.nodes[0].attrs["bogus"] = 1
    with pytest.raises(IRVerificationError) as excinfo:
        check_pass_boundary("graphrt", model, after="BiasSoftmaxFusion")
    assert "graphrt IR verification failed after pass BiasSoftmaxFusion" \
        in str(excinfo.value)
    with pytest.raises(IRVerificationError) as excinfo:
        check_pass_boundary("graphrt", model, after=None)
    assert "at pipeline entry" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# deepc graph-IR invariants
# --------------------------------------------------------------------------- #
def test_dgraph_layout_on_unknown_value():
    graph = build_dgraph()
    graph.layouts["ghost"] = "NCHW4c"
    assert any("layout tag on unknown value 'ghost'" in p
               for p in verify_ir("deepc-graph", graph))


def test_dgraph_unknown_layout_tag():
    graph = build_dgraph()
    graph.layouts["y"] = "NHWC"
    assert any("unknown layout 'NHWC'" in p
               for p in verify_ir("deepc-graph", graph))


def test_dgraph_fusion_group_integrity():
    graph = build_dgraph()
    graph.fusion_groups = [[], ["phantom"], ["relu0"], ["relu0"]]
    problems = verify_ir("deepc-graph", graph)
    assert any("fusion group #0 is empty" in p for p in problems)
    assert any("references unknown node 'phantom'" in p for p in problems)
    assert any("appears in fusion groups #2 and #3" in p for p in problems)


def test_dgraph_annotation_on_unknown_node():
    graph = build_dgraph()
    graph.annotations["phantom"] = {"pattern": None}
    assert any("annotation on unknown node 'phantom'" in p
               for p in verify_ir("deepc-graph", graph))


def test_dgraph_remove_node_drops_stale_layouts():
    graph = build_dgraph()
    extra = Node("Relu", "relu1", ["x"], ["z"], {})
    graph.nodes.append(extra)
    graph.value_types["z"] = graph.value_types["x"]
    graph.layouts["z"] = "NCHW"
    graph.remove_node(extra)
    assert verify_ir("deepc-graph", graph) == []


# --------------------------------------------------------------------------- #
# deepc low-IR invariants
# --------------------------------------------------------------------------- #
def test_low_duplicate_kernel_name():
    module = build_low_module()
    module.kernels.append(build_low_module().kernels[0])
    assert any("duplicate kernel name" in p
               for p in verify_ir("deepc-low", module))


def test_low_buffer_name_and_kind():
    module = build_low_module()
    kernel = module.kernels[0]
    kernel.buffers["a"].name = "renamed"
    kernel.buffers["b"].kind = "scratch"
    problems = verify_ir("deepc-low", module)
    assert any("registered as 'a' but named 'renamed'" in p for p in problems)
    assert any("unknown kind 'scratch'" in p for p in problems)


def test_low_read_before_write():
    module = build_low_module()
    kernel = module.kernels[0]
    ttype = kernel.buffers["a"].ttype
    kernel.buffers["tmp"] = Buffer("tmp", ttype, "intermediate")
    kernel.instrs.insert(0, TensorInstr("Relu", "early", ["tmp"], ["b"],
                                        loop_extent=4))
    assert any("reads buffer 'tmp' before it is written" in p
               for p in verify_ir("deepc-low", module))


def test_low_write_to_input_buffer():
    module = build_low_module()
    kernel = module.kernels[0]
    kernel.instrs[0].outputs = ["a"]
    problems = verify_ir("deepc-low", module)
    assert any("writes read-only input buffer 'a'" in p for p in problems)
    # ... and the declared output is now never written.
    assert any("declared output 'b' is never written" in p for p in problems)


def test_low_instr_metadata():
    module = build_low_module()
    instr = module.kernels[0].instrs[0]
    instr.loop_extent = -1
    instr.vector_width = 0
    instr.index_dtype = "int7"
    problems = verify_ir("deepc-low", module)
    assert any("negative loop extent -1" in p for p in problems)
    assert any("invalid vector width 0" in p for p in problems)
    assert any("unknown index dtype 'int7'" in p for p in problems)


def test_low_module_missing_types():
    module = build_low_module()
    del module.value_types["b"]
    module.params["p"] = np.zeros(2, dtype=np.float32)
    problems = verify_ir("deepc-low", module)
    assert any("module output 'b' has no recorded type" in p
               for p in problems)
    assert any("module param 'p' has no recorded type" in p for p in problems)


# --------------------------------------------------------------------------- #
# Extension point
# --------------------------------------------------------------------------- #
def test_register_invariant_participates_and_orders_last():
    def no_gemm(model):
        return [f"custom: {node.name} is a Gemm"
                for node in model.nodes if node.op == "Gemm"]

    before = len(registered_invariants("graphrt"))
    register_invariant("graphrt", no_gemm, name="no-gemm")
    try:
        builder = GraphBuilder("g")
        x = builder.input((2, 3), name="x")
        w = builder.weight(np.ones((3, 2), dtype=np.float32))
        b = builder.weight(np.zeros(2, dtype=np.float32))
        builder.output(builder.op1("Gemm", [x, w, b], name="gemm0"))
        model = builder.build()
        problems = verify_ir("graphrt", model)
        assert problems == ["custom: gemm0 is a Gemm"]
        with pytest.raises(IRVerificationError):
            check_pass_boundary("graphrt", model, after="SomePass")
    finally:
        from repro.analysis import verify as verify_module
        verify_module._INVARIANTS["graphrt"] = \
            verify_module._INVARIANTS["graphrt"][:before]
