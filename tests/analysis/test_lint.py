"""Rule-level coverage of the contract linter (repro.analysis.lint)."""

import textwrap

import pytest

from repro.analysis.lint import (_RULES, LintFinding, compare_to_baseline,
                                 findings_by_bucket, lint_file, lint_paths,
                                 register_lint_rule)


def lint_source(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(str(path))


def rules_of(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------------- #
# kernel-input-mutation
# --------------------------------------------------------------------------- #
def test_kernel_mutating_inputs_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        from repro.ops.semantics import kernel

        @kernel("BadRelu")
        def _bad_relu(attrs, inputs):
            x, = inputs
            x[x < 0] = 0
            return [x]
    """)
    assert rules_of(findings) == ["kernel-input-mutation"]
    assert "mutates input-derived value 'x'" in findings[0].message


def test_kernel_augmented_assign_and_method_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        from repro.ops.semantics import kernel

        @kernel("BadAdd")
        def _bad_add(attrs, inputs):
            inputs[0] += inputs[1]
            inputs[0].sort()
            return [inputs[0]]
    """)
    assert rules_of(findings) == ["kernel-input-mutation"] * 2


def test_kernel_allocating_output_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import numpy as np
        from repro.ops.semantics import kernel

        @kernel("GoodRelu")
        def _good_relu(attrs, inputs):
            x, = inputs
            out = np.maximum(x, 0)
            out[out > 10] = 10  # mutating a fresh allocation is fine
            return [out]
    """)
    assert findings == []


def test_non_kernel_function_not_in_scope(tmp_path):
    findings = lint_source(tmp_path, """
        def helper(buffer):
            buffer[0] = 1  # not a kernel: out of this rule's scope
    """)
    assert findings == []


# --------------------------------------------------------------------------- #
# unseeded-global-random
# --------------------------------------------------------------------------- #
def test_global_numpy_draw_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        import numpy as np

        def noise():
            return np.random.rand(3) + np.random.normal(0, 1)
    """)
    assert rules_of(findings) == ["unseeded-global-random"] * 2


def test_global_stdlib_draw_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        import random

        def pick(items):
            random.shuffle(items)
            return random.choice(items)
    """)
    assert rules_of(findings) == ["unseeded-global-random"] * 2


def test_seeded_generators_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import random
        import numpy as np

        def draws(seed):
            rng = np.random.default_rng(seed)
            pyrng = random.Random(seed)
            return rng.normal(), pyrng.randrange(10), np.random.SeedSequence(seed)
    """)
    assert findings == []


# --------------------------------------------------------------------------- #
# wall-clock-call
# --------------------------------------------------------------------------- #
def test_direct_clock_calls_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        import time
        from datetime import datetime

        def stamp():
            return time.monotonic(), time.perf_counter(), datetime.now()
    """)
    assert rules_of(findings) == ["wall-clock-call"] * 3


def test_injectable_timer_seam_clean(tmp_path):
    findings = lint_source(tmp_path, """
        import time

        class Probe:
            def __init__(self, timer=None):
                # Passing the function is the seam; only calls are flagged.
                self._timer = timer if timer is not None else time.perf_counter

            def sample(self):
                return self._timer()
    """)
    assert findings == []


# --------------------------------------------------------------------------- #
# set-order-escape
# --------------------------------------------------------------------------- #
def test_set_into_ordered_container_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        def frame(exclude, extra):
            return {"exclude": tuple(set(exclude) | {extra})}
    """)
    assert rules_of(findings) == ["set-order-escape"]


def test_for_loop_over_set_flagged(tmp_path):
    findings = lint_source(tmp_path, """
        def emit(names):
            for name in set(names):
                print(name)
    """)
    assert rules_of(findings) == ["set-order-escape"]


def test_sorted_set_clean(tmp_path):
    findings = lint_source(tmp_path, """
        def frame(exclude, extra):
            ordered = tuple(sorted(set(exclude) | {extra}))
            for name in sorted({"a", "b"}):
                print(name)
            return ordered
    """)
    assert findings == []


# --------------------------------------------------------------------------- #
# Ratchet baseline mechanics
# --------------------------------------------------------------------------- #
def test_ratchet_regressions_and_improvements():
    findings = [
        LintFinding("wall-clock-call", "src/a.py", 1, "m"),
        LintFinding("wall-clock-call", "src/a.py", 2, "m"),
        LintFinding("set-order-escape", "src/b.py", 3, "m"),
    ]
    buckets = findings_by_bucket(findings)
    assert buckets == {"wall-clock-call:src/a.py": 2,
                       "set-order-escape:src/b.py": 1}
    baseline = {"wall-clock-call:src/a.py": 1,
                "set-order-escape:src/b.py": 2,
                "unseeded-global-random:src/c.py": 1}
    regressions, improvements = compare_to_baseline(buckets, baseline)
    assert regressions == \
        ["wall-clock-call:src/a.py: 2 findings > 1 baselined"]
    assert len(improvements) == 2  # b.py shrank, c.py cleared entirely


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text(
        "import time\nELAPSED = time.monotonic()\n", encoding="utf-8")
    (tmp_path / "pkg" / "notes.txt").write_text("time.monotonic()",
                                                encoding="utf-8")
    findings = lint_paths([str(tmp_path)])
    assert rules_of(findings) == ["wall-clock-call"]


# --------------------------------------------------------------------------- #
# Extension point
# --------------------------------------------------------------------------- #
def test_register_lint_rule_participates(tmp_path):
    @register_lint_rule("no-print")
    def _no_print(tree, path):
        import ast
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "print":
                yield LintFinding("no-print", path, node.lineno,
                                  "print() in library code")

    try:
        findings = lint_source(tmp_path, "print('hi')\n")
        assert rules_of(findings) == ["no-print"]
        assert findings_by_bucket(findings) == {
            f"no-print:{findings[0].path}": 1}
    finally:
        _RULES.pop("no-print", None)
