"""Unit tests for Model, Node, GraphBuilder, validation and serialization."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import GraphError, TypeCheckError
from repro.graph import (
    GraphBuilder,
    Model,
    Node,
    TensorType,
    is_valid,
    validate_model,
    validation_errors,
)
from repro.graph.serialize import dumps, loads, model_from_dict, model_to_dict

from repro.testing import build_conv_model, build_mlp_model


class TestNode:
    def test_clone_is_independent(self):
        node = Node("Add", "add0", ["a", "b"], ["c"], {"axes": [1, 2]})
        clone = node.clone()
        clone.inputs.append("x")
        clone.attrs["axes"].append(3)
        assert node.inputs == ["a", "b"]
        assert node.attrs["axes"] == [1, 2]

    def test_signature_stable_under_attr_order(self):
        a = Node("Conv2d", "c1", [], [], {"stride": 2, "padding": 1})
        b = Node("Conv2d", "c2", [], [], {"padding": 1, "stride": 2})
        assert a.signature() == b.signature()

    def test_with_attrs(self):
        node = Node("Clip", "clip", ["x"], ["y"], {"min": 0})
        updated = node.with_attrs(max=5)
        assert updated.attrs == {"min": 0, "max": 5}
        assert node.attrs == {"min": 0}

    def test_attr_default(self):
        node = Node("Softmax", "s", ["x"], ["y"], {})
        assert node.attr("axis", -1) == -1


class TestModelConstruction:
    def test_duplicate_value_rejected(self):
        model = Model()
        model.add_input("x", TensorType((2,), DType.float32))
        with pytest.raises(GraphError):
            model.add_input("x", TensorType((2,), DType.float32))

    def test_node_with_unknown_input_rejected(self):
        model = Model()
        node = Node("Relu", "r", ["missing"], ["y"])
        with pytest.raises(GraphError):
            model.add_node(node, [TensorType((2,), DType.float32)])

    def test_mark_unknown_output_rejected(self):
        model = Model()
        with pytest.raises(GraphError):
            model.mark_output("nope")

    def test_output_type_count_mismatch(self):
        model = Model()
        model.add_input("x", TensorType((2,), DType.float32))
        node = Node("Relu", "r", ["x"], ["y"])
        with pytest.raises(GraphError):
            model.add_node(node, [])

    def test_builder_produces_valid_models(self):
        for model in (build_mlp_model(), build_conv_model()):
            assert is_valid(model)
            assert model.outputs

    def test_builder_default_outputs_are_leaves(self):
        model = build_conv_model()
        consumed = {name for node in model.nodes for name in node.inputs}
        for output in model.outputs:
            assert output not in consumed


class TestModelQueries:
    def test_topological_order(self, mlp_model):
        order = mlp_model.topological_order()
        seen = set(mlp_model.inputs) | set(mlp_model.initializers)
        for node in order:
            assert all(name in seen for name in node.inputs)
            seen.update(node.outputs)

    def test_cycle_detection(self):
        model = Model()
        model.add_input("x", TensorType((2,), DType.float32))
        model.value_types["a"] = TensorType((2,), DType.float32)
        model.value_types["b"] = TensorType((2,), DType.float32)
        model.nodes.append(Node("Relu", "n1", ["b"], ["a"]))
        model.nodes.append(Node("Relu", "n2", ["a"], ["b"]))
        with pytest.raises(GraphError):
            model.topological_order()

    def test_producer_consumer_maps(self, mlp_model):
        producers = mlp_model.producer_map()
        consumers = mlp_model.consumer_map()
        for node in mlp_model.nodes:
            for output in node.outputs:
                assert producers[output] is node
            for name in node.inputs:
                assert node in consumers[name]

    def test_is_connected(self, conv_model):
        assert conv_model.is_connected()

    def test_clone_independent(self, conv_model):
        clone = conv_model.clone()
        clone.nodes[0].attrs["stride"] = 99
        first_weight = next(iter(clone.initializers))
        clone.initializers[first_weight][...] = 0
        assert conv_model.nodes[0].attrs["stride"] != 99
        assert not np.all(conv_model.initializers[first_weight] == 0)

    def test_fresh_names(self, mlp_model):
        assert mlp_model.fresh_value_name() not in mlp_model.value_types
        assert mlp_model.fresh_node_name("gemm") not in {
            node.name for node in mlp_model.nodes}


class TestModelMutation:
    def test_replace_uses(self, mlp_model):
        target = mlp_model.nodes[1].outputs[0]
        mlp_model.replace_uses(target, mlp_model.inputs[0])
        for node in mlp_model.nodes:
            assert target not in node.inputs

    def test_prune_dead_nodes(self, conv_model):
        model = conv_model.clone()
        # Add a node whose output is unused.
        dead_out = model.fresh_value_name("dead")
        node = Node("Relu", "dead_relu", [model.inputs[0]], [dead_out])
        model.add_node(node, [model.type_of(model.inputs[0])])
        removed = model.prune_dead_nodes()
        assert removed == 1
        assert all(n.name != "dead_relu" for n in model.nodes)

    def test_remove_node_keeps_used_types(self, mlp_model):
        model = mlp_model.clone()
        node = model.nodes[-1]
        model.remove_node(node)
        assert all(n.name != node.name for n in model.nodes)


class TestValidation:
    def test_valid_model_passes(self, conv_model):
        validate_model(conv_model)

    def test_wrong_output_type_detected(self, mlp_model):
        model = mlp_model.clone()
        some_output = model.nodes[0].outputs[0]
        model.value_types[some_output] = TensorType((99, 99), DType.float32)
        errors = validation_errors(model)
        assert errors
        with pytest.raises(TypeCheckError):
            validate_model(model)

    def test_shape_mismatch_detected(self):
        builder = GraphBuilder("bad")
        x = builder.input([2, 3])
        w = builder.weight(np.zeros((4, 5), dtype=np.float32))
        model = builder.model
        node = Node("MatMul", "mm", [x, w], ["out"])
        model.value_types["out"] = TensorType((2, 5), DType.float32)
        model.nodes.append(node)
        model.mark_output("out")
        assert not is_valid(model)

    def test_unknown_graph_output_detected(self, mlp_model):
        model = mlp_model.clone()
        model.outputs.append("ghost")
        assert any("ghost" in problem for problem in validation_errors(model))


class TestSerialization:
    def test_roundtrip_preserves_structure(self, conv_model):
        restored = loads(dumps(conv_model))
        assert [n.op for n in restored.nodes] == [n.op for n in conv_model.nodes]
        assert restored.inputs == conv_model.inputs
        assert restored.outputs == conv_model.outputs
        assert restored.value_types == conv_model.value_types
        for name, array in conv_model.initializers.items():
            np.testing.assert_allclose(restored.initializers[name], array, rtol=1e-6)
        assert is_valid(restored)

    def test_roundtrip_execution_matches(self, mlp_model, rng):
        from repro.runtime import Interpreter, random_inputs

        restored = loads(dumps(mlp_model))
        inputs = random_inputs(mlp_model, rng)
        ref = Interpreter().run(mlp_model, inputs)
        out = Interpreter().run(restored, inputs)
        for key in ref:
            np.testing.assert_allclose(ref[key], out[key], rtol=1e-6)

    def test_version_check(self, mlp_model):
        payload = model_to_dict(mlp_model)
        payload["format_version"] = 999
        with pytest.raises(GraphError):
            model_from_dict(payload)

    def test_attr_encoding(self):
        builder = GraphBuilder("attrs")
        x = builder.input([2, 4])
        builder.op1("Slice", [x], starts=[0], ends=[np.int64(2)], axes=(0,), steps=[1])
        model = builder.build()
        restored = loads(dumps(model))
        assert restored.nodes[0].attrs["ends"] == [2]
        assert restored.nodes[0].attrs["axes"] == [0]
