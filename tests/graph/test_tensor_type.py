"""Unit tests for TensorType and broadcasting."""

import pytest
from hypothesis import given, strategies as st

from repro.dtypes import DType
from repro.graph.tensor_type import TensorType, broadcast_shapes


class TestTensorType:
    def test_basic_properties(self):
        ttype = TensorType((2, 3, 4), DType.float32)
        assert ttype.rank == 3
        assert ttype.numel == 24
        assert ttype.nbytes == 96

    def test_scalar(self):
        scalar = TensorType((), DType.int64)
        assert scalar.rank == 0
        assert scalar.numel == 1
        assert scalar.is_scalar()

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorType((2, -1), DType.float32)

    def test_equality_and_hash(self):
        a = TensorType([2, 3], DType.float32)
        b = TensorType((2, 3), DType.float32)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TensorType((2, 3), DType.float64)

    def test_with_shape_and_dtype(self):
        ttype = TensorType((2, 3), DType.float32)
        assert ttype.with_shape((6,)).shape == (6,)
        assert ttype.with_dtype(DType.int32).dtype is DType.int32
        # original unchanged (frozen dataclass semantics)
        assert ttype.shape == (2, 3)

    def test_str(self):
        assert str(TensorType((2, 3), DType.float32)) == "float32[2x3]"
        assert "scalar" in str(TensorType((), DType.float32))


class TestBroadcastShapes:
    @pytest.mark.parametrize("lhs,rhs,expected", [
        ((2, 3), (2, 3), (2, 3)),
        ((2, 3), (1, 3), (2, 3)),
        ((2, 1), (1, 3), (2, 3)),
        ((4, 2, 3), (3,), (4, 2, 3)),
        ((), (5,), (5,)),
        ((1,), (7, 1), (7, 1)),
    ])
    def test_valid(self, lhs, rhs, expected):
        assert broadcast_shapes(lhs, rhs) == expected

    @pytest.mark.parametrize("lhs,rhs", [
        ((2, 3), (2, 4)),
        ((2,), (3,)),
        ((5, 2, 2), (3, 2, 2, 2)),
    ])
    def test_invalid(self, lhs, rhs):
        with pytest.raises(ValueError):
            broadcast_shapes(lhs, rhs)

    def test_commutative(self):
        assert broadcast_shapes((2, 1), (3,)) == broadcast_shapes((3,), (2, 1))

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=4))
    def test_broadcast_with_self_is_identity(self, shape):
        shape = tuple(shape)
        assert broadcast_shapes(shape, shape) == shape

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4))
    def test_broadcast_with_ones_matches_numpy(self, shape):
        import numpy as np

        shape = tuple(shape)
        ones = (1,) * len(shape)
        expected = np.broadcast_shapes(shape, ones)
        assert broadcast_shapes(shape, ones) == expected
