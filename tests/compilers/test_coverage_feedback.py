"""Tests for the coverage feedback primitives and tracer/denominator fixes.

Covers the delta-oriented worker channel (:class:`CoverageFeedback`, arc
string codecs), the regression for nested/interleaved tracer start/stop
(previously silent no-ops that could disable a foreign tracer), and the
``estimate_total_arcs`` denominator fix (docstring and continuation lines
no longer count as executable).
"""

import sys

import pytest

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import (
    CoverageDelta,
    CoverageFeedback,
    CoverageTracer,
    arc_from_str,
    arc_to_str,
    estimate_total_arcs,
    executable_line_count,
    is_pass_arc,
)

#: Fixture source with 3-line module docstring, function docstring, a
#: continuation, a comment and a blank line.  The naive "non-blank,
#: non-comment" heuristic counts 10 lines; the interpreter can attribute
#: instructions to exactly 6 (the module docstring's implicit ``__doc__``
#: assignment on line 1, ``X = 1``, the ``def``, the two halves of the
#: parenthesized expression, and the ``return``).
FIXTURE_SOURCE = '''"""Module docstring
spanning
three lines."""

X = 1


def f(a,
      b):
    """Function docstring."""
    y = (a +
         b)
    # comment
    return y
'''


class TestExecutableLineCount:
    def test_fixture_denominator_is_pinned(self):
        assert executable_line_count(FIXTURE_SOURCE) == 6

    def test_naive_heuristic_would_overcount(self):
        naive = sum(1 for line in FIXTURE_SOURCE.splitlines()
                    if line.strip() and not line.strip().startswith("#"))
        assert naive == 10  # what the old heuristic reported
        assert executable_line_count(FIXTURE_SOURCE) < naive

    def test_syntax_errors_count_zero(self):
        assert executable_line_count("def broken(:\n") == 0

    def test_estimate_total_arcs_positive_and_ordered(self):
        total = estimate_total_arcs()
        pass_only = estimate_total_arcs(pass_only=True)
        assert total > pass_only > 0


class TestTracerNestingRegression:
    def test_nested_start_raises(self, mlp_model):
        tracer = CoverageTracer(systems=("graphrt",))
        with tracer:
            with pytest.raises(RuntimeError, match="nested"):
                tracer.start()
        # the failed nested start must not have killed the outer session
        assert tracer._active is False  # cleanly stopped by the with-block

    def test_interleaved_foreign_tracer_raises_on_stop(self):
        tracer = CoverageTracer(systems=("graphrt",))
        tracer.start()

        def foreign(frame, event, arg):  # pragma: no cover - never fires
            return None

        sys.settrace(foreign)
        try:
            with pytest.raises(RuntimeError, match="another trace function"):
                tracer.stop()
            # the foreign tracer was left in place, not clobbered
            assert sys.gettrace() is foreign
        finally:
            sys.settrace(None)

    def test_stop_when_inactive_is_a_noop(self):
        tracer = CoverageTracer(systems=("graphrt",))
        tracer.stop()  # never started: nothing to restore, no error
        assert tracer._active is False

    def test_sequential_reuse_still_works(self, mlp_model):
        tracer = CoverageTracer(systems=("graphrt",))
        compiler = GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))
        with tracer:
            compiler.compile_model(mlp_model)
        first = tracer.count()
        with tracer:
            compiler.compile_model(mlp_model)
        assert tracer.count() >= first > 0


class TestArcCodec:
    def test_roundtrip(self):
        arc = ("graphrt/passes/fusion.py", 10, 12)
        assert arc_from_str(arc_to_str(arc)) == arc

    def test_pass_scope_from_encoded_arc(self):
        import os

        inside = arc_to_str((os.path.join("graphrt", "passes", "x.py"), 1, 2))
        outside = arc_to_str((os.path.join("graphrt", "compiler.py"), 1, 2))
        assert is_pass_arc(inside)
        assert not is_pass_arc(outside)

    def test_delta_counts(self):
        import os

        delta = CoverageDelta(arcs=(
            arc_to_str((os.path.join("deepc", "lowpasses", "loops.py"), 1, 2)),
            arc_to_str((os.path.join("deepc", "codegen.py"), 3, 4)),
        ))
        assert len(delta) == 2
        assert delta.pass_arcs == 1


class TestCoverageFeedback:
    def test_flush_emits_only_new_arcs(self, mlp_model, conv_model):
        feedback = CoverageFeedback(systems=("graphrt",))
        compiler = GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))
        with feedback.tracer:
            compiler.compile_model(mlp_model)
        first = feedback.flush()
        assert len(first) > 0
        # same work again: everything already seen, delta is empty
        with feedback.tracer:
            compiler.compile_model(mlp_model)
        assert len(feedback.flush()) == 0
        # different work: only the novelty ships
        with feedback.tracer:
            compiler.compile_model(conv_model)
        second = feedback.flush()
        assert set(second.arcs).isdisjoint(first.arcs)
