"""Tests for Turbo, the coverage tracer and the seeded-bug registry."""

import numpy as np
import pytest

from repro.compilers import (
    BugConfig,
    CompileOptions,
    CoverageTracer,
    DeepCCompiler,
    GraphRTCompiler,
    TurboCompiler,
    all_bugs,
    bug_spec,
    bugs_of_system,
    estimate_total_arcs,
    make_compiler,
)
from repro.compilers.coverage import is_pass_file
from repro.dtypes import DType
from repro.errors import ConversionError, TransformationError
from repro.graph.builder import GraphBuilder
from repro.runtime import Interpreter, random_inputs

from repro.testing import build_conv_model


class TestTurbo:
    def test_matches_oracle_without_bugs(self, conv_model, rng):
        compiler = TurboCompiler(CompileOptions(bugs=BugConfig.none()))
        engine = compiler.compile_model(conv_model)
        inputs = random_inputs(conv_model, rng)
        reference = Interpreter().run(conv_model, inputs)
        outputs = engine.run(inputs)
        for name in reference:
            np.testing.assert_allclose(reference[name], outputs[name], rtol=1e-4)

    def test_closed_source_flag(self):
        assert TurboCompiler.open_source is False
        assert GraphRTCompiler.open_source and DeepCCompiler.open_source

    def test_clip_int32_bug_semantic(self):
        builder = GraphBuilder("clip32")
        x = builder.input([4], DType.int32)
        builder.op1("Clip", [x], min=-2, max=2)
        model = builder.build()
        model.nodes[0].attrs["opset_unsupported"] = True  # as the exporter bug does
        engine = TurboCompiler(CompileOptions(bugs=BugConfig.only(
            "turbo-clip-int32-dtype"))).compile_model(model)
        assert "turbo-clip-int32-dtype" in engine.triggered_bugs
        outputs = engine.run({model.inputs[0]: np.array([-3, -1, 0, 5], dtype=np.int32)})
        assert not np.array_equal(list(outputs.values())[0], [-2, -1, 0, 2])

    def test_clip_int32_rejected_without_bug(self):
        builder = GraphBuilder("clip32b")
        x = builder.input([4], DType.int32)
        builder.op1("Clip", [x], min=-2, max=2)
        model = builder.build()
        model.nodes[0].attrs["opset_unsupported"] = True
        with pytest.raises(ConversionError):
            TurboCompiler(CompileOptions(bugs=BugConfig.none())).compile_model(model)

    def test_pow_high_rank_exponent_crash(self):
        builder = GraphBuilder("pow3")
        x = builder.input([2, 3, 4])
        e = builder.input([2, 3, 4])
        builder.op1("Pow", [x, e])
        model = builder.build()
        with pytest.raises(TransformationError, match="turbo-pow-kernel-large-exponent"):
            TurboCompiler(CompileOptions(bugs=BugConfig.only(
                "turbo-pow-kernel-large-exponent"))).compile_model(model)

    def test_concat_many_inputs_crash(self):
        builder = GraphBuilder("bigconcat")
        parts = [builder.input([2, 2]) for _ in range(5)]
        builder.op("Concat", parts, axis=0)
        model = builder.build()
        with pytest.raises(TransformationError, match="turbo-concat-many-inputs"):
            TurboCompiler(CompileOptions(bugs=BugConfig.only(
                "turbo-concat-many-inputs"))).compile_model(model)

    def test_softmax_axis0_fusion_semantic(self):
        builder = GraphBuilder("sm0")
        x = builder.input([4, 3])
        b = builder.weight(np.random.rand(4, 3).astype(np.float32))
        v = builder.op1("Add", [x, b])
        v = builder.op1("Softmax", [v], axis=0)
        builder.output(v)
        model = builder.build()
        engine = TurboCompiler(CompileOptions(bugs=BugConfig.only(
            "turbo-softmax-axis0-fusion"))).compile_model(model)
        assert "turbo-softmax-axis0-fusion" in engine.triggered_bugs
        inputs = random_inputs(model, np.random.default_rng(0))
        outputs = engine.run(inputs)
        sums = list(outputs.values())[0].sum(axis=0)
        assert not np.allclose(sums, np.ones_like(sums))

    def test_make_compiler_factory(self):
        for name in ("graphrt", "deepc", "turbo"):
            assert make_compiler(name).name == name
        with pytest.raises(KeyError):
            make_compiler("tvm")


class TestCoverageTracer:
    def test_traces_only_selected_systems(self, conv_model, rng):
        tracer = CoverageTracer(systems=("graphrt",))
        with tracer:
            GraphRTCompiler(CompileOptions(bugs=BugConfig.none())).compile_model(conv_model)
        graphrt_arcs = tracer.count()
        assert graphrt_arcs > 0
        tracer_deepc_only = CoverageTracer(systems=("deepc",))
        with tracer_deepc_only:
            GraphRTCompiler(CompileOptions(bugs=BugConfig.none())).compile_model(conv_model)
        assert tracer_deepc_only.count() == 0

    def test_pass_only_scope_is_subset(self, conv_model):
        tracer = CoverageTracer()
        with tracer:
            DeepCCompiler(CompileOptions(bugs=BugConfig.none())).compile_model(conv_model)
        assert 0 < tracer.count(pass_only=True) <= tracer.count()

    def test_accumulates_across_runs(self, conv_model, mlp_model):
        tracer = CoverageTracer(systems=("graphrt",))
        compiler = GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))
        with tracer:
            compiler.compile_model(mlp_model)
        first = tracer.count()
        with tracer:
            compiler.compile_model(conv_model)
        assert tracer.count() >= first

    def test_reset(self, mlp_model):
        tracer = CoverageTracer(systems=("graphrt",))
        with tracer:
            GraphRTCompiler(CompileOptions(bugs=BugConfig.none())).compile_model(mlp_model)
        tracer.reset()
        assert tracer.count() == 0

    def test_is_pass_file(self):
        import os

        assert is_pass_file(os.path.join("graphrt", "passes", "fusion.py"))
        assert is_pass_file(os.path.join("deepc", "lowpasses", "loops.py"))
        assert not is_pass_file(os.path.join("deepc", "compiler.py"))

    def test_estimate_total_arcs_positive(self):
        total = estimate_total_arcs()
        pass_only = estimate_total_arcs(pass_only=True)
        assert total > pass_only > 0


class TestBugRegistry:
    def test_registry_is_populated(self):
        assert len(all_bugs()) >= 25

    def test_every_bug_well_formed(self):
        for spec in all_bugs():
            assert spec.system in ("graphrt", "deepc", "turbo", "exporter",
                                   "autodiff")
            assert spec.phase in ("transformation", "conversion", "unclassified")
            assert spec.symptom in ("crash", "semantic", "perf", "gradient",
                                    "verifier")
            assert spec.required_features
            assert spec.description

    def test_distribution_shape_matches_paper(self):
        """DeepC (TVM) carries the most bugs; transformation bugs dominate."""
        per_system = {system: len(bugs_of_system(system))
                      for system in ("graphrt", "deepc", "turbo", "exporter")}
        assert per_system["deepc"] == max(per_system.values())
        transformation = sum(1 for spec in all_bugs() if spec.phase == "transformation")
        conversion = sum(1 for spec in all_bugs() if spec.phase == "conversion")
        assert transformation > conversion
        crash = sum(1 for spec in all_bugs() if spec.symptom == "crash")
        semantic = sum(1 for spec in all_bugs() if spec.symptom == "semantic")
        assert crash > semantic

    def test_config_all_none_only(self):
        assert len(BugConfig.all().enabled_ids()) == len(all_bugs())
        assert not BugConfig.none().enabled_ids()
        only = BugConfig.only("deepc-import-scalar-reduce")
        assert only.enabled("deepc-import-scalar-reduce")
        assert not only.enabled("deepc-import-matmul-vector")

    def test_unknown_bug_id_rejected(self):
        with pytest.raises(KeyError):
            BugConfig.only("not-a-bug")
        with pytest.raises(KeyError):
            BugConfig.all().enabled("not-a-bug")

    def test_bug_spec_lookup(self):
        spec = bug_spec("deepc-layout-broadcast-add")
        assert spec.system == "deepc"
        assert spec.phase == "transformation"
