"""Tests for the GraphRT compiler: importer, passes, runtime, seeded bugs."""

import numpy as np
import pytest

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.compilers.graphrt.passes import PassContext, run_pipeline
from repro.dtypes import DType
from repro.errors import ConversionError, TransformationError
from repro.graph.builder import GraphBuilder
from repro.runtime import Interpreter, random_inputs

from repro.testing import build_conv_model, build_mlp_model


def compile_and_compare(model, bugs=None, rng_seed=0, opt_level=2):
    """Compile with GraphRT and compare against the oracle; return both."""
    compiler = GraphRTCompiler(CompileOptions(opt_level=opt_level,
                                              bugs=bugs or BugConfig.none()))
    compiled = compiler.compile_model(model)
    inputs = random_inputs(model, np.random.default_rng(rng_seed))
    reference = Interpreter().run(model, inputs)
    outputs = compiled.run(inputs)
    return reference, outputs, compiled


def assert_matches_oracle(model, bugs=None, **kwargs):
    reference, outputs, compiled = compile_and_compare(model, bugs, **kwargs)
    for name in reference:
        np.testing.assert_allclose(np.asarray(reference[name], dtype=np.float64),
                                   np.asarray(outputs[name], dtype=np.float64),
                                   rtol=1e-4, atol=1e-5)
    return compiled


class TestImporter:
    def test_rejects_unknown_operator(self):
        builder = GraphBuilder("weird")
        x = builder.input([2, 2])
        builder.op1("Relu", [x])
        model = builder.build()
        model.nodes[0].op = "Bogus"
        with pytest.raises(ConversionError):
            GraphRTCompiler().compile_model(model)

    def test_rejects_opset_unsupported(self, mlp_model):
        model = mlp_model.clone()
        model.nodes[0].attrs["opset_unsupported"] = True
        with pytest.raises(ConversionError):
            GraphRTCompiler().compile_model(model)

    def test_rejects_type_invalid_model(self, mlp_model):
        from repro.graph.tensor_type import TensorType

        model = mlp_model.clone()
        model.value_types[model.nodes[0].outputs[0]] = TensorType((1,), DType.float32)
        with pytest.raises(ConversionError):
            GraphRTCompiler().compile_model(model)

    def test_supported_ops_probe(self):
        compiler = GraphRTCompiler()
        supported = compiler.supported_ops(["Relu", "Conv2d", "NoSuchOp"])
        assert supported == ["Relu", "Conv2d"]


class TestOptimizationsPreserveSemantics:
    def test_mlp(self, mlp_model):
        assert_matches_oracle(mlp_model)

    def test_cnn(self, conv_model):
        assert_matches_oracle(conv_model)

    def test_opt_level_zero_applies_no_passes(self, conv_model):
        compiled = assert_matches_oracle(conv_model, opt_level=0)
        assert compiled.applied_passes == []

    def test_identity_dropout_eliminated(self):
        builder = GraphBuilder("ident")
        x = builder.input([2, 3])
        v = builder.op1("Identity", [x])
        v = builder.op1("Dropout", [v], ratio=0.3)
        v = builder.op1("Relu", [v])
        builder.output(v)
        compiled = assert_matches_oracle(builder.build())
        assert [n.op for n in compiled.model.nodes] == ["Relu"]

    def test_constant_folding(self):
        builder = GraphBuilder("fold")
        x = builder.input([2, 2])
        a = builder.weight(np.full((2, 2), 2.0, dtype=np.float32))
        b = builder.weight(np.full((2, 2), 3.0, dtype=np.float32))
        folded = builder.op1("Add", [a, b])
        builder.op1("Mul", [x, folded])
        compiled = assert_matches_oracle(builder.build())
        assert all(node.op != "Add" for node in compiled.model.nodes)

    def test_arithmetic_simplification_removes_add_zero(self):
        builder = GraphBuilder("simp")
        x = builder.input([2, 2])
        zero = builder.weight(np.zeros((2, 2), dtype=np.float32))
        v = builder.op1("Add", [x, zero])
        v = builder.op1("Relu", [v])
        builder.output(v)
        compiled = assert_matches_oracle(builder.build())
        assert all(node.op != "Add" for node in compiled.model.nodes)

    def test_gemm_fusion(self):
        builder = GraphBuilder("gemm")
        x = builder.input([3, 4])
        w = builder.weight(np.random.rand(4, 5).astype(np.float32))
        b = builder.weight(np.random.rand(5).astype(np.float32))
        mm = builder.op1("MatMul", [x, w])
        out = builder.op1("Add", [mm, b])
        builder.output(out)
        compiled = assert_matches_oracle(builder.build())
        assert any(node.op == "Gemm" for node in compiled.model.nodes)

    def test_relu_clip_fusion_float32_correct(self):
        builder = GraphBuilder("reluclip")
        x = builder.input([8])
        v = builder.op1("Relu", [x])
        v = builder.op1("Clip", [v], min=-1.0, max=2.0)
        builder.output(v)
        compiled = assert_matches_oracle(builder.build(), bugs=BugConfig.all())
        assert all(node.op != "Relu" for node in compiled.model.nodes)

    def test_transpose_pair_eliminated(self):
        builder = GraphBuilder("tt")
        x = builder.input([2, 3, 4])
        v = builder.op1("Transpose", [x], perm=[2, 0, 1])
        v = builder.op1("Transpose", [v], perm=[1, 2, 0])
        v = builder.op1("Relu", [v])
        builder.output(v)
        compiled = assert_matches_oracle(builder.build())
        assert sum(node.op == "Transpose" for node in compiled.model.nodes) == 0

    def test_transpose_pair_merged_when_not_identity(self):
        builder = GraphBuilder("tt2")
        x = builder.input([2, 3, 4])
        v = builder.op1("Transpose", [x], perm=[2, 0, 1])
        v = builder.op1("Transpose", [v], perm=[2, 0, 1])
        v = builder.op1("Relu", [v])
        builder.output(v)
        compiled = assert_matches_oracle(builder.build())
        assert sum(node.op == "Transpose" for node in compiled.model.nodes) == 1

    def test_bias_softmax_fusion(self):
        builder = GraphBuilder("bsm")
        x = builder.input([2, 6])
        bias = builder.weight(np.random.rand(6).astype(np.float32))
        v = builder.op1("Add", [x, bias])
        v = builder.op1("Softmax", [v], axis=1)
        builder.output(v)
        compiled = assert_matches_oracle(builder.build())
        assert any(node.op == "BiasSoftmax" for node in compiled.model.nodes)

    def test_conv_batchnorm_folding(self):
        builder = GraphBuilder("convbn")
        x = builder.input([1, 3, 6, 6])
        w = builder.weight(np.random.rand(4, 3, 3, 3).astype(np.float32) * 0.3)
        conv = builder.op1("Conv2d", [x, w], stride=1, padding=1)
        scale = builder.weight(np.random.rand(4).astype(np.float32) + 0.5)
        bias = builder.weight(np.random.rand(4).astype(np.float32))
        mean = builder.weight(np.random.rand(4).astype(np.float32))
        var = builder.weight(np.random.rand(4).astype(np.float32) + 0.5)
        bn = builder.op1("BatchNorm", [conv, scale, bias, mean, var], epsilon=1e-5)
        builder.output(bn)
        compiled = assert_matches_oracle(builder.build())
        assert all(node.op != "BatchNorm" for node in compiled.model.nodes)

    def test_pad_conv_fusion(self):
        builder = GraphBuilder("padconv")
        x = builder.input([1, 2, 6, 6])
        pad = builder.op1("Pad", [x], pads=[0, 0, 1, 1, 0, 0, 1, 1],
                          mode="constant", value=0.0)
        w = builder.weight(np.random.rand(3, 2, 3, 3).astype(np.float32))
        conv = builder.op1("Conv2d", [pad, w], stride=1, padding=0)
        builder.output(conv)
        compiled = assert_matches_oracle(builder.build())
        assert all(node.op != "Pad" for node in compiled.model.nodes)
        assert compiled.model.nodes[-1].attrs["padding"] == 1

    def test_cse_merges_duplicates(self):
        builder = GraphBuilder("cse")
        x = builder.input([4])
        a = builder.op1("Sigmoid", [x])
        b = builder.op1("Sigmoid", [x])
        out = builder.op1("Add", [a, b])
        builder.output(out)
        compiled = assert_matches_oracle(builder.build())
        assert sum(node.op == "Sigmoid" for node in compiled.model.nodes) == 1

    def test_graph_output_names_preserved(self, conv_model):
        compiled = assert_matches_oracle(conv_model, bugs=BugConfig.all())
        assert compiled.model.outputs == conv_model.outputs


class TestSeededBugs:
    def test_matmul_scale_1x1_crash(self):
        builder = GraphBuilder("m0")
        x = builder.input([3, 1])
        scale = builder.weight(np.array(2.0, dtype=np.float32))
        scaled = builder.op1("Mul", [x, scale])
        one_by_one = builder.weight(np.random.rand(1, 1).astype(np.float32))
        mm = builder.op1("MatMul", [scaled, one_by_one])
        builder.output(mm)
        model = builder.build()
        with pytest.raises(TransformationError, match="graphrt-fuse-matmul-scale-1x1"):
            GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
                "graphrt-fuse-matmul-scale-1x1"))).compile_model(model)
        # Correct behaviour without the bug: compiles and matches the oracle.
        assert_matches_oracle(model, bugs=BugConfig.none())

    def test_relu_clip_f64_semantic(self):
        builder = GraphBuilder("rc64")
        x = builder.input([8], DType.float64)
        v = builder.op1("Relu", [x])
        v = builder.op1("Clip", [v], min=-2.0, max=2.0)
        builder.output(v)
        model = builder.build()
        compiler = GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
            "graphrt-relu-clip-fusion-f64")))
        compiled = compiler.compile_model(model)
        assert "graphrt-relu-clip-fusion-f64" in compiled.triggered_bugs
        inputs = {model.inputs[0]: np.linspace(-4, 4, 8)}
        reference = Interpreter().run(model, inputs)
        outputs = compiled.run(inputs)
        assert not np.allclose(list(reference.values())[0], list(outputs.values())[0])

    def test_gemm_fusion_scalar_bias_semantic(self):
        builder = GraphBuilder("gemmscalar")
        x = builder.input([3, 4])
        w = builder.weight(np.random.rand(4, 5).astype(np.float32))
        scalar = builder.weight(np.array(1.5, dtype=np.float32))
        mm = builder.op1("MatMul", [x, w])
        out = builder.op1("Add", [mm, scalar])
        builder.output(out)
        model = builder.build()
        compiled = GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
            "graphrt-gemm-fusion-bias-broadcast"))).compile_model(model)
        assert "graphrt-gemm-fusion-bias-broadcast" in compiled.triggered_bugs
        inputs = random_inputs(model, np.random.default_rng(0))
        reference = Interpreter().run(model, inputs)
        outputs = compiled.run(inputs)
        assert not np.allclose(list(reference.values())[0], list(outputs.values())[0])

    def test_transpose_elimination_bug_semantic(self):
        builder = GraphBuilder("ttbug")
        x = builder.input([2, 3, 4])
        v = builder.op1("Transpose", [x], perm=[2, 0, 1])
        v = builder.op1("Transpose", [v], perm=[2, 0, 1])
        v = builder.op1("ReduceSum", [v], axes=[0], keepdims=False)
        builder.output(v)
        model = builder.build()
        compiled = GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
            "graphrt-transpose-elimination-perm"))).compile_model(model)
        assert "graphrt-transpose-elimination-perm" in compiled.triggered_bugs

    def test_constfold_pow_overflow_crash(self):
        builder = GraphBuilder("pow")
        x = builder.input([2, 2])
        base = builder.weight(np.full((2, 2), 3.0, dtype=np.float32))
        exponent = builder.weight(np.full((2, 2), 20.0, dtype=np.float32))
        powed = builder.op1("Pow", [base, exponent])
        builder.op1("Add", [x, powed])
        model = builder.build()
        with pytest.raises(TransformationError, match="graphrt-constfold-pow-overflow"):
            GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
                "graphrt-constfold-pow-overflow"))).compile_model(model)

    def test_slice_merge_step_crash(self):
        builder = GraphBuilder("slices")
        x = builder.input([4, 12])
        v = builder.op1("Slice", [x], starts=[1], ends=[11], axes=[1], steps=[2])
        v = builder.op1("Slice", [v], starts=[0], ends=[3], axes=[0], steps=[1])
        builder.output(v)
        model = builder.build()
        with pytest.raises(TransformationError, match="graphrt-slice-merge-negative-step"):
            GraphRTCompiler(CompileOptions(bugs=BugConfig.only(
                "graphrt-slice-merge-negative-step"))).compile_model(model)
        assert_matches_oracle(model, bugs=BugConfig.none())
