"""Fixpoint/idempotence property of every registered pipeline pass.

Running any pass twice in a row must report no modification the second
time: graph rewrites in this codebase are expected to reach a fixpoint in
one application (they loop internally until done).  A pass that keeps
reporting changes on its own output would make ``modified_by`` provenance
meaningless and could loop forever in a future fixpoint driver.

The property is checked over the regression-corpus models (every frozen
bug-triggering graph, the most pass-exercising population we have) plus
the hand-built test models, with seeded bugs disabled — the property under
test is the passes' contract, not the seeded deviations from it.
"""

import json
from pathlib import Path

import pytest

from repro.compilers.base import CompileOptions
from repro.compilers.bugs import BugConfig
from repro.compilers.deepc import converter
from repro.compilers.deepc.lowering import lower_graph
from repro.compilers.graphrt.compiler import GraphRTCompiler
from repro.compilers.pipeline import (
    STAGES,
    PipelineContext,
    create_pass,
    registered_passes,
)
from repro.errors import ReproError
from repro.graph.serialize import model_from_dict
from repro.testing import build_conv_model, build_mlp_model

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def _source_models():
    models = [build_mlp_model(), build_conv_model()]
    for path in sorted(CORPUS_DIR.glob("*.json")):
        entry = json.loads(path.read_text(encoding="utf-8"))
        models.append(model_from_dict(entry["model"]))
    return models


@pytest.fixture(scope="module")
def stage_irs():
    """Per-stage IR populations derived from the source models.

    Models a backend cannot convert are skipped for that backend's stages
    (the corpus spans all systems; e.g. deepc rejects some operators) —
    the remaining population still covers every pass.
    """
    bugs = BugConfig.none()
    irs = {stage: [] for stage in STAGES}
    importer = GraphRTCompiler(CompileOptions(opt_level=0, bugs=bugs))
    for model in _source_models():
        try:
            irs["graphrt"].append(importer._import(model))
        except ReproError:
            pass
        try:
            graph, _ = converter.convert_model(model, bugs)
        except ReproError:
            continue
        irs["deepc-graph"].append(graph)
        try:
            module, _ = lower_graph(graph, bugs)
        except ReproError:
            continue
        irs["deepc-low"].append(module)
    assert all(irs[stage] for stage in STAGES)
    return irs


def _stage_pass_ids():
    return [(stage, name) for stage in STAGES
            for name in registered_passes(stage)]


@pytest.mark.parametrize("stage,pass_name", _stage_pass_ids(),
                         ids=[f"{s}:{n}" for s, n in _stage_pass_ids()])
def test_pass_is_idempotent(stage, pass_name, stage_irs):
    bugs = BugConfig.none()
    exercised = 0
    for ir in stage_irs[stage]:
        work = ir.clone()
        pipeline_pass = create_pass(stage, pass_name)
        pipeline_pass.run(work, PipelineContext(bugs=bugs, opt_level=2))
        second = PipelineContext(bugs=bugs, opt_level=2)
        changed_again = pipeline_pass.run(work, second)
        assert not changed_again, \
            (f"{stage}:{pass_name} reported a modification on its own "
             f"output (model {ir.name!r})")
        assert not second.modified_by
        exercised += 1
    assert exercised > 0
