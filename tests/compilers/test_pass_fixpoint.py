"""Per-pass contract properties of every registered pipeline pass.

Two properties, both checked over the regression-corpus models (every
frozen bug-triggering graph, the most pass-exercising population we have)
plus the hand-built test models, with seeded bugs disabled — the property
under test is the passes' contract, not the seeded deviations from it:

* **Fixpoint/idempotence** — running any pass twice in a row must report
  no modification the second time: graph rewrites in this codebase are
  expected to reach a fixpoint in one application (they loop internally
  until done).  A pass that keeps reporting changes on its own output
  would make ``modified_by`` provenance meaningless and could loop
  forever in a future fixpoint driver.

* **Solo semantic preservation** — every pass, run *alone* as a
  one-pass pipeline, is difftested against the no-pass pipeline: where
  the unoptimized compile executes, the solo-pass compile must execute
  too and produce numerically equivalent outputs.  This isolates each
  pass's correctness from the canonical orderings (a pass that is only
  correct because an earlier pass canonicalizes its input fails here).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.compilers.base import CompileOptions, build_compiler_set
from repro.compilers.bugs import BugConfig
from repro.compilers.deepc import converter
from repro.compilers.deepc.lowering import lower_graph
from repro.compilers.graphrt.compiler import GraphRTCompiler
from repro.compilers.pipeline import (
    STAGES,
    PipelineContext,
    PipelineSpec,
    create_pass,
    registered_passes,
)
from repro.core.difftest import (
    ABSOLUTE_TOLERANCE,
    RELATIVE_TOLERANCE,
    compare_outputs,
)
from repro.errors import ReproError
from repro.graph.serialize import model_from_dict
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import random_inputs
from repro.testing import build_conv_model, build_mlp_model

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: Which compiler runs each pipeline stage's passes.
_STAGE_COMPILER = {"graphrt": "graphrt", "deepc-graph": "deepc",
                   "deepc-low": "deepc"}


def _source_models():
    models = [build_mlp_model(), build_conv_model()]
    for path in sorted(CORPUS_DIR.glob("*.json")):
        entry = json.loads(path.read_text(encoding="utf-8"))
        models.append(model_from_dict(entry["model"]))
    return models


@pytest.fixture(scope="module")
def stage_irs():
    """Per-stage IR populations derived from the source models.

    Models a backend cannot convert are skipped for that backend's stages
    (the corpus spans all systems; e.g. deepc rejects some operators) —
    the remaining population still covers every pass.
    """
    bugs = BugConfig.none()
    irs = {stage: [] for stage in STAGES}
    importer = GraphRTCompiler(CompileOptions(opt_level=0, bugs=bugs))
    for model in _source_models():
        try:
            irs["graphrt"].append(importer._import(model))
        except ReproError:
            pass
        try:
            graph, _ = converter.convert_model(model, bugs)
        except ReproError:
            continue
        irs["deepc-graph"].append(graph)
        try:
            module, _ = lower_graph(graph, bugs)
        except ReproError:
            continue
        irs["deepc-low"].append(module)
    assert all(irs[stage] for stage in STAGES)
    return irs


def _stage_pass_ids():
    return [(stage, name) for stage in STAGES
            for name in registered_passes(stage)]


@pytest.mark.parametrize("stage,pass_name", _stage_pass_ids(),
                         ids=[f"{s}:{n}" for s, n in _stage_pass_ids()])
def test_pass_is_idempotent(stage, pass_name, stage_irs):
    bugs = BugConfig.none()
    exercised = 0
    for ir in stage_irs[stage]:
        work = ir.clone()
        pipeline_pass = create_pass(stage, pass_name)
        pipeline_pass.run(work, PipelineContext(bugs=bugs, opt_level=2))
        second = PipelineContext(bugs=bugs, opt_level=2)
        changed_again = pipeline_pass.run(work, second)
        assert not changed_again, \
            (f"{stage}:{pass_name} reported a modification on its own "
             f"output (model {ir.name!r})")
        assert not second.modified_by
        exercised += 1
    assert exercised > 0


# --------------------------------------------------------------------------- #
# Solo semantic preservation: each pass alone vs the no-pass pipeline
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def exported_cases():
    """(exported model, inputs) pairs shared by every solo-pass difftest."""
    bugs = BugConfig.none()
    cases = []
    for index, model in enumerate(_source_models()):
        exported = export_model(model, bugs=bugs)
        inputs = random_inputs(exported, np.random.default_rng(index))
        cases.append((exported, inputs))
    return cases


@pytest.fixture(scope="module")
def nopass_outputs(exported_cases):
    """Reference outputs of the empty pipeline, per compiler and case.

    ``None`` marks cases a backend cannot compile/run at all (unsupported
    operators, exceptional values) — those are skipped for that backend's
    passes rather than failing the property.
    """
    bugs = BugConfig.none()
    empty = PipelineSpec.from_stage_map("nopass", {})
    reference = {}
    for compiler_name in sorted(set(_STAGE_COMPILER.values())):
        compiler, = build_compiler_set([compiler_name], bugs=bugs,
                                       pipeline=empty)
        outputs = []
        for exported, inputs in exported_cases:
            try:
                outputs.append(compiler.compile_model(exported).run(inputs))
            except ReproError:
                outputs.append(None)
        reference[compiler_name] = outputs
    return reference


@pytest.mark.parametrize("stage,pass_name", _stage_pass_ids(),
                         ids=[f"{s}:{n}" for s, n in _stage_pass_ids()])
def test_pass_alone_preserves_semantics(stage, pass_name, exported_cases,
                                        nopass_outputs):
    bugs = BugConfig.none()
    compiler_name = _STAGE_COMPILER[stage]
    solo = PipelineSpec.from_stage_map(f"solo|{stage}|{pass_name}",
                                       {stage: [pass_name]})
    compiler, = build_compiler_set([compiler_name], bugs=bugs, pipeline=solo)
    exercised = 0
    for (exported, inputs), expected in zip(exported_cases,
                                            nopass_outputs[compiler_name]):
        if expected is None:
            continue
        actual = compiler.compile_model(exported).run(inputs)
        mismatch = compare_outputs(expected, actual, RELATIVE_TOLERANCE,
                                   ABSOLUTE_TOLERANCE)
        assert mismatch is None, \
            (f"{stage}:{pass_name} alone diverges from the no-pass "
             f"pipeline on model {exported.name!r}: {mismatch}")
        exercised += 1
    assert exercised > 0
