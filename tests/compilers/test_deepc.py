"""Tests for the DeepC compiler: conversion, passes, lowering, codegen, bugs."""

import numpy as np
import pytest

from repro.compilers import CompileOptions, DeepCCompiler
from repro.compilers.bugs import BugConfig
from repro.compilers.deepc.codegen import pack_nchw4c, unpack_nchw4c
from repro.compilers.deepc.converter import convert_model, supported_operators
from repro.compilers.deepc.ir import DGraph
from repro.compilers.deepc.lowering import lower_graph
from repro.compilers.deepc.lowpasses import LowPassContext, run_low_pipeline
from repro.compilers.deepc.passes import DeepCPassContext, run_pipeline
from repro.dtypes import DType
from repro.errors import ConversionError, TransformationError
from repro.graph.builder import GraphBuilder
from repro.runtime import Interpreter, random_inputs

from repro.testing import build_conv_model, build_mlp_model

NO_BUGS = BugConfig.none()


def assert_matches_oracle(model, bugs=None, opt_level=2, seed=0):
    compiler = DeepCCompiler(CompileOptions(opt_level=opt_level,
                                            bugs=bugs or NO_BUGS))
    compiled = compiler.compile_model(model)
    inputs = random_inputs(model, np.random.default_rng(seed))
    reference = Interpreter().run(model, inputs)
    outputs = compiled.run(inputs)
    for name in reference:
        np.testing.assert_allclose(np.asarray(reference[name], dtype=np.float64),
                                   np.asarray(outputs[name], dtype=np.float64),
                                   rtol=1e-4, atol=1e-5, err_msg=name)
    return compiled


class TestConverter:
    def test_produces_dgraph_with_annotations(self, conv_model):
        graph, triggered = convert_model(conv_model, NO_BUGS)
        assert isinstance(graph, DGraph)
        assert not triggered
        assert len(graph.nodes) == len(conv_model.nodes)
        for node in graph.nodes:
            assert graph.annotation(node, "pattern") is not None

    def test_unsupported_operator_rejected(self):
        builder = GraphBuilder("erf")
        x = builder.input([4])
        builder.op1("Erf", [x])
        with pytest.raises(ConversionError):
            convert_model(builder.build(), NO_BUGS)

    def test_supported_operators_excludes_unsupported(self):
        supported = supported_operators()
        assert "Erf" not in supported and "Conv2d" in supported

    def test_scalar_reduce_bug(self):
        builder = GraphBuilder("sred")
        x = builder.input([3, 4])
        builder.op1("ReduceSum", [x], axes=None, keepdims=False)
        model = builder.build()
        with pytest.raises(ConversionError, match="deepc-import-scalar-reduce"):
            convert_model(model, BugConfig.only("deepc-import-scalar-reduce"))
        convert_model(model, NO_BUGS)  # correct importer accepts it

    def test_matmul_vector_bug(self):
        builder = GraphBuilder("vec")
        x = builder.input([4])
        w = builder.weight(np.random.rand(4, 3).astype(np.float32))
        builder.op1("MatMul", [x, w])
        model = builder.build()
        with pytest.raises(ConversionError, match="deepc-import-matmul-vector"):
            convert_model(model, BugConfig.only("deepc-import-matmul-vector"))
        assert_matches_oracle(model)

    def test_where_broadcast_rank_bug(self):
        builder = GraphBuilder("where")
        cond = builder.input([1, 1], DType.bool_)
        lhs = builder.input([3, 1])
        rhs = builder.input([2])
        builder.op1("Where", [cond, lhs, rhs])
        model = builder.build()
        with pytest.raises(ConversionError, match="deepc-import-where-broadcast-rank"):
            convert_model(model, BugConfig.only("deepc-import-where-broadcast-rank"))
        assert_matches_oracle(model)

    def test_bool_argmax_bug_flips_op(self):
        builder = GraphBuilder("argb")
        x = builder.input([2, 5], DType.bool_)
        builder.op1("ArgMax", [x], axis=1)
        model = builder.build()
        graph, triggered = convert_model(
            model, BugConfig.only("deepc-import-bool-cast-argmax"))
        assert triggered == ["deepc-import-bool-cast-argmax"]
        assert graph.nodes[0].op == "ArgMin"


class TestGraphPasses:
    def test_optimizations_preserve_semantics(self, mlp_model, conv_model):
        assert_matches_oracle(mlp_model)
        assert_matches_oracle(conv_model)

    def test_divmul_simplification_correct_for_floats(self):
        builder = GraphBuilder("divmul")
        x = builder.input([4])
        c = builder.weight(np.full(4, 3.0, dtype=np.float32))
        v = builder.op1("Mul", [x, c])
        v = builder.op1("Div", [v, c])
        v = builder.op1("Relu", [v])
        builder.output(v)
        compiled = assert_matches_oracle(builder.build(), bugs=BugConfig.all())
        # For floats the rewrite is legal and should have removed Mul/Div
        # from the lowered program.
        lowered_ops = [instr.op for kernel in compiled.module.kernels
                       for instr in kernel.instrs]
        assert "Div" not in lowered_ops

    def test_divmul_bug_changes_integer_results(self):
        builder = GraphBuilder("divmulint")
        x = builder.input([4], DType.int32)
        c = builder.weight(np.full(4, 3, dtype=np.int32))
        v = builder.op1("Div", [builder.op1("Mul", [x, c]), c])
        v = builder.op1("Abs", [v])
        builder.output(v)
        model = builder.build()
        graph, _ = convert_model(model, NO_BUGS)
        ctx = DeepCPassContext(bugs=BugConfig.only("deepc-simplify-divmul-int"))
        run_pipeline(graph, ctx)
        assert "deepc-simplify-divmul-int" in ctx.triggered_bugs
        # Correct behaviour keeps the Mul/Div pair for integers.
        graph_correct, _ = convert_model(model, NO_BUGS)
        correct_ctx = DeepCPassContext(bugs=NO_BUGS)
        run_pipeline(graph_correct, correct_ctx)
        assert any(node.op == "Div" for node in graph_correct.nodes)

    def test_constant_folding_pad_negative_bug(self):
        builder = GraphBuilder("padfold")
        x = builder.input([2, 2])
        const = builder.weight(np.random.rand(2, 6).astype(np.float32))
        padded = builder.op1("Pad", [const], pads=[0, -1, 0, -2], mode="constant",
                             value=0.0)
        builder.op1("Add", [x, builder.op1("Slice", [padded], starts=[0, 0],
                                           ends=[2, 2], axes=[0, 1], steps=[1, 1])])
        model = builder.build()
        graph, _ = convert_model(model, NO_BUGS)
        ctx = DeepCPassContext(bugs=BugConfig.only("deepc-constfold-pad-negative"))
        with pytest.raises(TransformationError, match="deepc-constfold-pad-negative"):
            run_pipeline(graph, ctx)
        assert_matches_oracle(model)

    def test_fold_transpose_reshape_bug(self):
        builder = GraphBuilder("tr")
        x = builder.input([2, 3, 4])
        t = builder.op1("Transpose", [x], perm=[2, 1, 0])
        r = builder.op1("Reshape", [t], shape=[12, 2])
        builder.output(r)
        model = builder.build()
        compiled = DeepCCompiler(CompileOptions(bugs=BugConfig.only(
            "deepc-fold-transpose-reshape"))).compile_model(model)
        assert "deepc-fold-transpose-reshape" in compiled.triggered_bugs
        inputs = random_inputs(model, np.random.default_rng(1))
        reference = Interpreter().run(model, inputs)
        outputs = compiled.run(inputs)
        assert not np.allclose(list(reference.values())[0], list(outputs.values())[0])
        assert_matches_oracle(model)

    def test_fusion_groups_cover_all_nodes(self, conv_model):
        graph, _ = convert_model(conv_model, NO_BUGS)
        ctx = DeepCPassContext(bugs=NO_BUGS)
        run_pipeline(graph, ctx)
        grouped = {name for group in graph.fusion_groups for name in group}
        assert grouped == {node.name for node in graph.nodes}

    def test_fusion_scalar_reduce_bug(self):
        builder = GraphBuilder("fusescalar")
        x = builder.input([4, 4])
        red = builder.op1("ReduceSum", [x], axes=[0, 1], keepdims=False)
        builder.op1("Sigmoid", [red])
        model = builder.build()
        graph, _ = convert_model(model, BugConfig.only("deepc-fusion-scalar-reduce"))
        ctx = DeepCPassContext(bugs=BugConfig.only("deepc-fusion-scalar-reduce"))
        with pytest.raises(TransformationError, match="deepc-fusion-scalar-reduce"):
            run_pipeline(graph, ctx)
        assert_matches_oracle(model)


class TestLayoutTransform:
    def test_conv_rewritten_to_packed_layout(self):
        builder = GraphBuilder("layout")
        x = builder.input([1, 4, 8, 8])
        w = builder.weight(np.random.rand(8, 4, 3, 3).astype(np.float32) * 0.2)
        conv = builder.op1("Conv2d", [x, w], stride=1, padding=1)
        builder.op1("Relu", [conv])
        model = builder.build()
        compiled = assert_matches_oracle(model)
        ops = [instr.op for kernel in compiled.module.kernels for instr in kernel.instrs]
        assert "Conv2dNCHW4c" in ops and "LayoutPack4c" in ops

    def test_odd_channel_conv_not_rewritten(self):
        builder = GraphBuilder("layout_odd")
        x = builder.input([1, 3, 8, 8])
        w = builder.weight(np.random.rand(5, 3, 3, 3).astype(np.float32) * 0.2)
        builder.op1("Conv2d", [x, w], stride=1, padding=1)
        compiled = assert_matches_oracle(builder.build())
        ops = [instr.op for kernel in compiled.module.kernels for instr in kernel.instrs]
        assert "Conv2dNCHW4c" not in ops

    def test_pack_unpack_roundtrip(self):
        x = np.random.rand(2, 8, 3, 3).astype(np.float32)
        np.testing.assert_allclose(unpack_nchw4c(pack_nchw4c(x)), x)

    def test_layout_broadcast_add_bug(self):
        builder = GraphBuilder("m0")
        x = builder.input([1, 4, 1, 48])
        w = builder.weight(np.random.rand(8, 4, 1, 1).astype(np.float32))
        conv = builder.op1("Conv2d", [x, w], stride=1, padding=0)
        ones = builder.weight(np.ones((1, 1, 48), dtype=np.float32))
        builder.op1("Add", [conv, ones])
        model = builder.build()
        with pytest.raises(TransformationError, match="deepc-layout-broadcast-add"):
            DeepCCompiler(CompileOptions(bugs=BugConfig.only(
                "deepc-layout-broadcast-add"))).compile_model(model)
        assert_matches_oracle(model)

    def test_layout_conv_slice_stride_bug(self):
        builder = GraphBuilder("convslice")
        x = builder.input([1, 4, 6, 6])
        w = builder.weight(np.random.rand(8, 4, 3, 3).astype(np.float32))
        conv = builder.op1("Conv2d", [x, w], stride=1, padding=1)
        builder.op1("Slice", [conv], starts=[0], ends=[8], axes=[1], steps=[2])
        model = builder.build()
        with pytest.raises(TransformationError, match="deepc-layout-conv-slice-stride"):
            DeepCCompiler(CompileOptions(bugs=BugConfig.only(
                "deepc-layout-conv-slice-stride"))).compile_model(model)
        assert_matches_oracle(model)


class TestLoweringAndLowPasses:
    def test_lowering_produces_kernels(self, conv_model):
        graph, _ = convert_model(conv_model, NO_BUGS)
        ctx = DeepCPassContext(bugs=NO_BUGS)
        run_pipeline(graph, ctx)
        module, triggered = lower_graph(graph, NO_BUGS)
        assert not triggered
        assert module.kernels
        assert module.instr_count() >= len(conv_model.nodes)
        assert "kernel" in module.text()

    def test_opt0_single_node_groups(self, mlp_model):
        graph, _ = convert_model(mlp_model, NO_BUGS)
        module, _ = lower_graph(graph, NO_BUGS)
        assert len(module.kernels) == len(mlp_model.nodes)

    def test_i64_reshape_bug(self):
        builder = GraphBuilder("bigreshape")
        x = builder.input([8, 8, 16])
        builder.op1("Reshape", [x], shape=[16, 64])
        model = builder.build()
        graph, _ = convert_model(model, NO_BUGS)
        with pytest.raises(TransformationError, match="deepc-i64-reshape-mismatch"):
            lower_graph(graph, BugConfig.only("deepc-i64-reshape-mismatch"))
        assert_matches_oracle(model)

    def test_i64_broadcastto_bug(self):
        builder = GraphBuilder("bigbcast")
        x = builder.input([1, 5, 1, 3])
        builder.op1("BroadcastTo", [x], shape=[2, 5, 4, 3])
        model = builder.build()
        graph, _ = convert_model(model, NO_BUGS)
        with pytest.raises(TransformationError, match="deepc-i64-broadcastto-mismatch"):
            lower_graph(graph, BugConfig.only("deepc-i64-broadcastto-mismatch"))
        assert_matches_oracle(model)

    def test_vectorize_remainder_bug_changes_results(self):
        builder = GraphBuilder("vecrem")
        x = builder.input([7])  # 7 % 4 != 0
        v = builder.op1("Sigmoid", [x])
        builder.output(v)
        model = builder.build()
        compiled = DeepCCompiler(CompileOptions(bugs=BugConfig.only(
            "deepc-lowlevel-vectorize-remainder"))).compile_model(model)
        assert "deepc-lowlevel-vectorize-remainder" in compiled.triggered_bugs
        inputs = {model.inputs[0]: np.linspace(0.1, 1.0, 7).astype(np.float32)}
        outputs = compiled.run(inputs)
        reference = Interpreter().run(model, inputs)
        key = model.outputs[0]
        assert not np.allclose(reference[key], outputs[key])
        # The first 4 (vectorized) elements are still correct.
        np.testing.assert_allclose(reference[key][:4], outputs[key][:4], rtol=1e-5)
        assert_matches_oracle(model)

    def test_unitloop_fusion_bug(self):
        builder = GraphBuilder("unitloop")
        x = builder.input([4, 4])
        v = builder.op1("ReduceSum", [x], axes=[1], keepdims=True)
        v = builder.op1("Sigmoid", [v])
        builder.output(v)
        model = builder.build()
        with pytest.raises(TransformationError, match="deepc-lowlevel-unitloop-fusion"):
            DeepCCompiler(CompileOptions(bugs=BugConfig.only(
                "deepc-lowlevel-unitloop-fusion"))).compile_model(model)
        assert_matches_oracle(model)

    def test_dead_store_elimination(self, mlp_model):
        graph, _ = convert_model(mlp_model, NO_BUGS)
        ctx = DeepCPassContext(bugs=NO_BUGS)
        run_pipeline(graph, ctx)
        module, _ = lower_graph(graph, NO_BUGS)
        # Inject a dead instruction.
        kernel = module.kernels[0]
        from repro.compilers.deepc.lowir import Buffer, TensorInstr

        dead_name = "dead_buffer"
        kernel.buffers[dead_name] = Buffer(dead_name, kernel.buffer(kernel.inputs[0]).ttype)
        kernel.instrs.append(TensorInstr("Relu", "dead", [kernel.inputs[0]],
                                         [dead_name], {}, loop_extent=1))
        before = len(kernel.instrs)
        low_ctx = LowPassContext(bugs=NO_BUGS)
        run_low_pipeline(module, low_ctx)
        assert len(kernel.instrs) < before

    def test_module_clone_independent(self, mlp_model):
        graph, _ = convert_model(mlp_model, NO_BUGS)
        module, _ = lower_graph(graph, NO_BUGS)
        clone = module.clone()
        clone.kernels[0].instrs[0].vector_width = 99
        assert module.kernels[0].instrs[0].vector_width != 99


class TestEndToEnd:
    def test_opt_levels_agree_without_bugs(self, conv_model):
        inputs = random_inputs(conv_model, np.random.default_rng(2))
        outputs = {}
        for level in (0, 1, 2):
            compiler = DeepCCompiler(CompileOptions(opt_level=level, bugs=NO_BUGS))
            outputs[level] = compiler.compile_model(conv_model).run(inputs)
        for level in (1, 2):
            for name in outputs[0]:
                np.testing.assert_allclose(outputs[0][name], outputs[level][name],
                                           rtol=1e-5)

    def test_supported_ops_interface(self):
        compiler = DeepCCompiler()
        assert "Erf" not in compiler.supported_ops(["Erf", "Relu"])
