"""The shared pass-pipeline layer: specs, canonical levels, sampling, tokens.

This is the unification layer the three historical pass frameworks
(graphrt passes, deepc graph passes, deepc low passes) now register into;
these tests pin its contracts — the single opt-level interpretation point,
deterministic pipeline sampling, the token vocabulary the matrix axis
speaks, and user-pass registration.
"""

import numpy as np
import pytest

from repro.compilers.base import CompileOptions
from repro.compilers.bugs import BugConfig
from repro.compilers.graphrt.compiler import GraphRTCompiler
from repro.compilers.pipeline import (
    STAGES,
    PipelineContext,
    PipelinePass,
    PipelineSpec,
    _REGISTRY,
    canonical_order,
    canonical_spec,
    create_pass,
    describe_pass_registry,
    expand_pipeline_tokens,
    register_pass,
    registered_passes,
    resolve_pipeline,
    run_pass_pipeline,
    sample_spec,
)
from repro.testing import build_mlp_model


class TestCanonicalSpecs:
    def test_o0_runs_nothing_anywhere(self):
        spec = canonical_spec(0)
        for stage in STAGES:
            assert spec.passes(stage) == ()

    def test_o2_is_the_canonical_order(self):
        spec = canonical_spec(2)
        for stage in STAGES:
            assert spec.passes(stage) == canonical_order(stage)

    def test_o1_filters_by_min_opt_level_not_by_backend(self):
        # The only O2-gated passes live in deepc-low; O1 must drop exactly
        # those — this is the single spec-level replacement for the
        # per-pass gating the three old runners each reimplemented.
        o1, o2 = canonical_spec(1), canonical_spec(2)
        assert o1.passes("graphrt") == o2.passes("graphrt")
        assert o1.passes("deepc-graph") == o2.passes("deepc-graph")
        dropped = set(o2.passes("deepc-low")) - set(o1.passes("deepc-low"))
        assert dropped == {"VectorizeInnerLoop", "PlanBufferReuse"}

    def test_every_stage_has_passes(self):
        for stage in STAGES:
            assert registered_passes(stage)
            assert canonical_order(stage)


class TestPipelineSpec:
    def test_dict_round_trip(self):
        spec = sample_spec(3, 1)
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_validate_rejects_unknown_pass(self):
        spec = PipelineSpec.from_stage_map("bad", {"graphrt": ["NoSuchPass"]})
        with pytest.raises(KeyError, match="NoSuchPass"):
            spec.validate()

    def test_validate_rejects_unknown_stage(self):
        spec = PipelineSpec.from_stage_map("bad", {"llvm": []})
        with pytest.raises(KeyError, match="llvm"):
            spec.validate()

    def test_absent_stage_runs_no_passes(self):
        spec = PipelineSpec.from_stage_map("partial",
                                           {"graphrt": ["DeadCodeElimination"]})
        assert spec.passes("deepc-graph") == ()


class TestSampling:
    def test_pure_function_of_seed_and_index(self):
        assert sample_spec(11, 4) == sample_spec(11, 4)
        assert sample_spec(11, 4) != sample_spec(11, 5)

    def test_samples_are_valid_and_nonempty(self):
        for index in range(8):
            spec = sample_spec(99, index).validate()
            for stage in STAGES:
                assert spec.passes(stage), "sampler must keep >= 1 pass"

    def test_samples_vary_order_and_subset(self):
        draws = {sample_spec(7, index).passes("graphrt") for index in range(16)}
        assert len(draws) > 1


class TestTokens:
    def test_opt_tokens_resolve_to_canonical_specs(self):
        assert resolve_pipeline("O0") == canonical_spec(0)
        assert resolve_pipeline("O2") == canonical_spec(2)

    def test_rand_tokens_resolve_to_samples(self):
        assert resolve_pipeline("rand:5:2") == sample_spec(5, 2)

    def test_sampler_token_must_be_expanded_first(self):
        with pytest.raises(KeyError, match="expand"):
            resolve_pipeline("random:3@7")

    def test_garbage_token_rejected(self):
        with pytest.raises(KeyError):
            resolve_pipeline("Ox")

    def test_expansion_is_deterministic_and_seed_dependent(self):
        first = expand_pipeline_tokens(["O2", "random:3@7"], campaign_seed=42)
        again = expand_pipeline_tokens(["O2", "random:3@7"], campaign_seed=42)
        other = expand_pipeline_tokens(["O2", "random:3@7"], campaign_seed=43)
        assert first == again
        assert first != other
        assert first[0] == "O2" and len(first) == 4
        for token in first[1:]:
            resolve_pipeline(token).validate()

    def test_expansion_dedups_and_validates(self):
        assert expand_pipeline_tokens(["O2", "O2"], 0) == ["O2"]
        with pytest.raises(KeyError):
            expand_pipeline_tokens(["bogus"], 0)
        with pytest.raises(ValueError):
            expand_pipeline_tokens(["random:0@1"], 0)


class _UppercaseNames(PipelinePass):
    """Toy user pass: rename every node to uppercase (idempotent-ish)."""

    def run(self, model, ctx):
        changed = False
        for node in model.nodes:
            if node.name != node.name.upper():
                node.name = node.name.upper()
                changed = True
        return changed


class TestUserPasses:
    def test_register_run_and_listing(self):
        register_pass("graphrt", _UppercaseNames)
        try:
            assert "_UppercaseNames" in registered_passes("graphrt")
            # user passes never join the canonical pipelines
            assert "_UppercaseNames" not in canonical_order("graphrt")
            assert "[user-registered]" in describe_pass_registry()
            model = build_mlp_model()
            ctx = PipelineContext(bugs=BugConfig.none())
            applied = run_pass_pipeline("graphrt", model, ctx,
                                        ["_UppercaseNames"])
            assert applied == ["_UppercaseNames"]
            assert ctx.modified_by == ["_UppercaseNames"]
            assert all(n.name == n.name.upper() for n in model.nodes)
        finally:
            _REGISTRY["graphrt"].pop("_UppercaseNames", None)

    def test_conflicting_registration_rejected(self):
        register_pass("graphrt", _UppercaseNames)
        try:
            register_pass("graphrt", _UppercaseNames)  # same class: idempotent

            class Impostor(PipelinePass):
                def run(self, ir, ctx):
                    return False

            Impostor.__name__ = "_UppercaseNames"
            with pytest.raises(ValueError, match="already registered"):
                register_pass("graphrt", Impostor)
        finally:
            _REGISTRY["graphrt"].pop("_UppercaseNames", None)

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown pipeline stage"):
            register_pass("llvm", _UppercaseNames)


class TestCompilersHonorSpecs:
    def test_explicit_spec_overrides_opt_level(self):
        spec = PipelineSpec.from_stage_map(
            "just-dce", {"graphrt": ["DeadCodeElimination"]})
        compiler = GraphRTCompiler(CompileOptions(
            opt_level=2, bugs=BugConfig.none(), pipeline=spec))
        compiled = compiler.compile_model(build_mlp_model())
        assert compiled.applied_passes == ["DeadCodeElimination"]

    def test_no_spec_means_canonical_pipeline_of_opt_level(self):
        compiler = GraphRTCompiler(CompileOptions(opt_level=2,
                                                  bugs=BugConfig.none()))
        compiled = compiler.compile_model(build_mlp_model())
        assert tuple(compiled.applied_passes) == \
            canonical_spec(2).passes("graphrt")

    def test_modified_by_provenance_is_recorded(self):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder("ident")
        x = builder.input([2, 4])
        hidden = builder.op1("Identity", [x])
        out = builder.op1("Relu", [hidden])
        builder.output(out)
        compiler = GraphRTCompiler(CompileOptions(opt_level=2,
                                                  bugs=BugConfig.none()))
        compiled = compiler.compile_model(builder.build())
        assert set(compiled.modified_by) <= set(compiled.applied_passes)
        assert "EliminateIdentity" in compiled.modified_by

    def test_run_pass_pipeline_default_matches_ctx_opt_level(self):
        model = build_mlp_model()
        ctx = PipelineContext(bugs=BugConfig.none(), opt_level=0)
        assert run_pass_pipeline("graphrt", model, ctx) == []
