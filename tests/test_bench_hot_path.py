"""Tier-1 smoke for the hot-path benchmark harness (`make bench`).

Asserts the harness runs and its JSON schema validates — trajectory
capture, never perf thresholds (CI machines are too noisy for those)."""

import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TOOL_PATH = os.path.join(_REPO_ROOT, "tools", "bench_hot_path.py")
_COMMITTED = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_9.json")
_PREVIOUS = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_7.json")


def _load_tool():
    spec = importlib.util.spec_from_file_location("bench_hot_path", _TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_tool():
    return _load_tool()


@pytest.fixture(autouse=True)
def _restore_cache_switches():
    yield
    from repro.core import cache

    cache.reset()
    cache.configure(enabled=True, artifact=True, plan=True, prefix=True)


@pytest.mark.smoke
def test_harness_runs_and_schema_validates(bench_tool, tmp_path):
    out = tmp_path / "BENCH_test.json"
    code = bench_tool.main(["--iterations", "3", "--output", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert bench_tool.validate_payload(payload) == []
    for name in bench_tool.STAGE_NAMES:
        assert payload["stages"][name]["iterations_per_sec"] > 0
    for mode in bench_tool.INTERPRETER_MODES:
        assert payload["interpreter"][mode]["iterations_per_sec"] > 0
    assert payload["oracle_gradcheck"]["sequential"]["iterations_per_sec"] > 0
    assert payload["oracle_gradcheck"]["batched"]["iterations_per_sec"] > 0
    # The replayed seed stream must resolve reference runs out of the
    # prefix value cache (structure + content key, fresh Model objects).
    assert payload["prefix_campaign"]["hit_rate"] > 0
    # Two compile passes over identical exported graphs: the second is all
    # artifact hits, so the hit rate must be positive with caching on.
    assert payload["cache"]["compile_stage_artifact_hit_rate"] > 0


@pytest.mark.smoke
def test_no_cache_mode_reports_zero_hit_rate(bench_tool):
    payload = bench_tool.run_benchmark(iterations=2, enable_cache=False)
    assert bench_tool.validate_payload(payload) == []
    assert payload["cache"]["compile_stage_artifact_hit_rate"] == 0.0
    assert payload["config"]["cache_enabled"] is False
    assert payload["prefix_campaign"]["hit_rate"] == 0.0


@pytest.mark.smoke
def test_committed_trajectory_point_validates(bench_tool):
    assert os.path.exists(_COMMITTED), \
        "benchmarks/BENCH_9.json missing — run `make bench`"
    payload = json.loads(open(_COMMITTED, encoding="utf-8").read())
    assert bench_tool.validate_payload(payload) == []
    assert payload["config"]["cache_enabled"] is True
    assert payload["schema_version"] == 2


@pytest.mark.smoke
def test_previous_trajectory_point_still_validates(bench_tool):
    # Schema v1 points stay valid: the trajectory is append-only and old
    # BENCH files are never rewritten.
    payload = json.loads(open(_PREVIOUS, encoding="utf-8").read())
    assert bench_tool.validate_payload(payload) == []
    assert payload["schema_version"] == 1


def test_validate_payload_flags_problems(bench_tool):
    assert bench_tool.validate_payload({}) != []
    broken = {"schema_version": 1,
              "stages": {"generate": {"count": 1, "seconds": 0.1,
                                      "iterations_per_sec": -5}},
              "cache": {"stats": {}}}
    problems = bench_tool.validate_payload(broken)
    assert any("iterations_per_sec" in problem for problem in problems)
    assert any("search" in problem for problem in problems)
