"""Tier-1 smoke: the engine sources stay inside the lint ratchet.

Runs the contract linter (:mod:`repro.analysis.lint`) over ``src/`` and
fails on any finding not covered by the committed baseline
(``tools/lint_baseline.json``).  New determinism/purity violations —
kernels mutating inputs, unseeded global RNG draws, raw clock reads,
set iteration order escaping into wire frames — therefore fail CI the
moment they are introduced; baselined debt can only burn down
(``make lint-static`` / ``--update-baseline``).
"""

from pathlib import Path

from repro.analysis.lint import (compare_to_baseline, findings_by_bucket,
                                 lint_paths, load_baseline)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"


def test_src_has_no_findings_above_the_ratchet():
    assert BASELINE.exists(), \
        "missing tools/lint_baseline.json — run `make lint-baseline`"
    findings = lint_paths([str(REPO_ROOT / "src")], root=str(REPO_ROOT))
    buckets = findings_by_bucket(findings)
    regressions, _improvements = compare_to_baseline(
        buckets, load_baseline(str(BASELINE)))
    offending = [finding.format() for finding in findings
                 if any(entry.startswith(
                     f"{finding.rule}:{finding.path}:")
                     for entry in regressions)]
    assert not regressions, (
        "lint findings above the ratchet baseline (fix them, or if "
        "legitimately deferred run `python -m repro.analysis.lint src "
        "--update-baseline`):\n  " + "\n  ".join(regressions + offending))


def test_baseline_has_no_dead_entries():
    """Entries for findings that no longer exist must be ratcheted away,
    otherwise they quietly grant headroom for new violations."""
    findings = lint_paths([str(REPO_ROOT / "src")], root=str(REPO_ROOT))
    buckets = findings_by_bucket(findings)
    baseline = load_baseline(str(BASELINE))
    dead = {key: allowed for key, allowed in baseline.items()
            if buckets.get(key, 0) < allowed}
    assert not dead, (
        f"baseline grants more findings than exist — ratchet it down with "
        f"`python -m repro.analysis.lint src --update-baseline`: {dead}")
