"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro.compilers import CompileOptions, DeepCCompiler, GraphRTCompiler, TurboCompiler
from repro.compilers.bugs import BugConfig
from repro.core import DifferentialTester, GeneratorConfig, generate_model, search_values
from repro.graph.serialize import dumps, loads
from repro.runtime import Interpreter, export_model, random_inputs

NO_BUGS = BugConfig.none()


@pytest.mark.parametrize("seed", range(6))
def test_generated_models_compile_identically_everywhere(seed):
    """Generate -> search values -> export -> compile on all three backends:
    with no seeded bugs, every backend must agree with the oracle."""
    generated = generate_model(GeneratorConfig(n_nodes=8, seed=seed))
    search = search_values(generated.model, rng=np.random.default_rng(seed),
                           time_budget=0.1)
    model = search.apply_weights(generated.model) if search.weights else generated.model
    inputs = search.inputs or random_inputs(model, np.random.default_rng(seed))

    oracle = Interpreter().run_detailed(model, inputs)
    if not oracle.numerically_valid:
        pytest.skip("model not numerically valid for this seed")

    exported = export_model(model, bugs=NO_BUGS)
    for compiler_cls in (GraphRTCompiler, DeepCCompiler, TurboCompiler):
        compiler = compiler_cls(CompileOptions(opt_level=2, bugs=NO_BUGS))
        if compiler.supported_ops([n.op for n in exported.nodes]) != \
                [n.op for n in exported.nodes]:
            continue
        outputs = compiler.compile_model(exported).run(inputs)
        for name, expected in oracle.outputs.items():
            np.testing.assert_allclose(
                np.asarray(expected, dtype=np.float64),
                np.asarray(outputs[name], dtype=np.float64),
                rtol=1e-3, atol=1e-4,
                err_msg=f"{compiler_cls.__name__} disagrees on seed {seed}")


def test_serialization_roundtrip_of_generated_models():
    generated = generate_model(GeneratorConfig(n_nodes=10, seed=123))
    restored = loads(dumps(generated.model))
    inputs = random_inputs(generated.model, np.random.default_rng(0))
    ref = Interpreter().run(generated.model, inputs)
    out = Interpreter().run(restored, inputs)
    for name in ref:
        np.testing.assert_allclose(ref[name], out[name], rtol=1e-6)


def test_difftest_pipeline_on_generated_model():
    generated = generate_model(GeneratorConfig(n_nodes=8, seed=77))
    tester = DifferentialTester([
        GraphRTCompiler(CompileOptions(bugs=NO_BUGS)),
        DeepCCompiler(CompileOptions(bugs=NO_BUGS)),
    ], bugs=NO_BUGS)
    case = tester.run_case(generated.model)
    ok_or_not_impl = all(
        verdict.status == "ok" or "not implemented" in verdict.message
        for verdict in case.verdicts)
    assert ok_or_not_impl
