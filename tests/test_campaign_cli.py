"""Tests for the ``python -m repro.campaign`` command-line front end."""

import json

import pytest

from repro.campaign import (
    build_parser,
    main,
    parse_compiler_sets,
    parse_generators,
    parse_opt_levels,
    parse_oracles,
)


def _parse(*argv):
    return build_parser().parse_args(list(argv))


class TestArgumentParsing:
    def test_compilers_accumulate_subsets(self):
        args = _parse("--compilers", "graphrt,deepc", "--compilers", "turbo")
        assert parse_compiler_sets(args) == [["graphrt", "deepc"], ["turbo"]]

    def test_matrix_flag_expands_to_singletons(self):
        args = _parse("--matrix")
        assert parse_compiler_sets(args) == [["deepc"], ["graphrt"], ["turbo"]]

    def test_explicit_compilers_win_over_matrix_flag(self):
        args = _parse("--matrix", "--compilers", "turbo")
        assert parse_compiler_sets(args) == [["turbo"]]

    def test_no_matrix_flags_means_flat_mode(self):
        assert parse_compiler_sets(_parse()) is None
        assert parse_opt_levels(_parse()) is None

    def test_opt_levels_parsed(self):
        assert parse_opt_levels(_parse("--opt-levels", "0,2")) == [0, 2]

    def test_generators_parsed(self):
        args = _parse("--generators", "nnsmith,graphfuzzer, lemon")
        assert parse_generators(args) == ["nnsmith", "graphfuzzer", "lemon"]
        assert parse_generators(_parse()) is None

    def test_oracle_and_pool_mode_defaults(self):
        args = _parse()
        assert args.oracle == "difftest"
        assert args.pool_mode == "union"
        assert _parse("--pool-mode", "per-subset").pool_mode == "per-subset"

    def test_oracles_axis_parsed(self):
        args = _parse("--oracles", "difftest,perf, gradcheck")
        assert parse_oracles(args) == ["difftest", "perf", "gradcheck"]
        assert parse_oracles(_parse()) is None


class TestSerialModeErrorsLoudly:
    def test_serial_with_checkpoint_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--serial", "--iterations", "2",
                  "--checkpoint", str(tmp_path / "c.json")])
        assert excinfo.value.code == 2
        assert "--checkpoint requires the parallel engine" in \
            capsys.readouterr().err

    def test_workers_zero_with_checkpoint_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--workers", "0", "--iterations", "2",
                  "--checkpoint", str(tmp_path / "c.json")])

    def test_serial_with_matrix_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--serial", "--iterations", "2", "--compilers", "turbo"])

    def test_serial_with_generators_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--serial", "--iterations", "2",
                  "--generators", "nnsmith,lemon"])

    def test_serial_with_oracles_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--serial", "--iterations", "2",
                  "--oracles", "difftest,perf"])

    def test_serial_with_schedule_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--serial", "--iterations", "2",
                  "--schedule", "coverage"])
        with pytest.raises(SystemExit):
            main(["--workers", "0", "--iterations", "2", "--adaptive"])

    def test_opt_levels_without_compilers_is_an_error(self, capsys):
        # factory mode fixes its own opt levels; ignoring the flag silently
        # would hand the user an O2 campaign labeled as what they asked for
        with pytest.raises(SystemExit):
            main(["--iterations", "2", "--opt-levels", "0"])
        assert "--opt-levels requires" in capsys.readouterr().err


@pytest.mark.campaign
class TestCampaignRuns:
    def test_serial_reference_path_still_runs(self, capsys):
        assert main(["--serial", "--iterations", "2", "--nodes", "4",
                     "--deterministic", "--quiet"]) == 0
        assert "iterations" in capsys.readouterr().out

    def test_workers_one_runs_in_process_with_checkpoint(
            self, tmp_path, monkeypatch, capsys):
        import repro.core.parallel as parallel_module

        def _no_processes(*args, **kwargs):
            raise AssertionError("--workers 1 must not spawn processes")

        monkeypatch.setattr(parallel_module.multiprocessing, "get_context",
                            _no_processes)
        path = tmp_path / "solo.ckpt.json"
        assert main(["--workers", "1", "--iterations", "2", "--nodes", "4",
                     "--deterministic", "--quiet", "--checkpoint-every", "2",
                     "--checkpoint", str(path)]) == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert all(entry["done"] for entry in payload["cells"].values())

    def test_matrix_cli_prints_per_subset_venn(self, capsys):
        assert main(["--workers", "1", "--iterations", "2", "--nodes", "4",
                     "--compilers", "turbo", "--compilers", "graphrt",
                     "--opt-levels", "0,2",
                     "--deterministic", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "matrix [turbo | graphrt] x O[0,2]" in out
        assert "Seeded bugs by compiler subset:" in out
        assert "Seeded bugs by opt level:" in out

    def test_generator_axis_cli_prints_per_generator_venn(self, capsys):
        assert main(["--workers", "1", "--iterations", "3", "--nodes", "4",
                     "--generators", "nnsmith,targeted",
                     "--deterministic", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "x gen[nnsmith,targeted]" in out
        assert "Seeded bugs by generator:" in out

    def test_coverage_schedule_cli_prints_coverage(self, capsys):
        assert main(["--workers", "1", "--iterations", "2", "--nodes", "4",
                     "--schedule", "coverage",
                     "--deterministic", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "(coverage scheduling)" in out
        assert "Compiler coverage:" in out
        assert "branch arcs" in out

    def test_crash_oracle_cli_runs(self, capsys):
        assert main(["--workers", "1", "--iterations", "2", "--nodes", "4",
                     "--generators", "targeted", "--oracle", "crash",
                     "--deterministic", "--quiet"]) == 0
        assert "iterations" in capsys.readouterr().out

    def test_oracle_axis_cli_prints_per_oracle_venn(self, capsys):
        assert main(["--workers", "1", "--iterations", "2", "--nodes", "4",
                     "--oracles", "difftest,crash",
                     "--deterministic", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "x oracle[difftest,crash]" in out
        assert "Seeded bugs by oracle:" in out
