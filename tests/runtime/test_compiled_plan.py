"""Compiled execution plans (`repro.runtime.compiled_plan`, ISSUE 9).

The invisibility contract, checked from every angle the interpreter can be
driven: sequential compiled-vs-legacy bit-identity on generated models (both
record modes, including exception parity at terminal steps), batched-vs-
sequential bit-identity (including batch-hostile fallbacks and shared-input
dedup), the cross-iteration prefix value cache (hit semantics, exceptional
preservation, record-mode bypass), the batched gradcheck runner gating, and
per-node slow-node attribution.
"""

import time

import numpy as np
import pytest

from repro.core import cache
from repro.core.generator import GeneratorConfig, generate_model
from repro.dtypes import DType
from repro.errors import (ExecutionError, GenerationError, GraphError,
                          ReproError, UnsupportedOperatorError)
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.runtime.compiled_plan import (attribute_slow_nodes,
                                         batched_reference_runner,
                                         compile_plan)
from repro.runtime.interpreter import Interpreter, random_inputs
from repro.testing import build_mlp_model


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts cold with every cache layer on (process default)."""
    cache.reset()
    cache.configure(enabled=True, artifact=True, plan=True, prefix=True)
    yield
    cache.reset()
    cache.configure(enabled=True, artifact=True, plan=True, prefix=True)


def _same_array(a, b):
    return (a.dtype == b.dtype and a.shape == b.shape
            and a.tobytes() == b.tobytes())


def _outcome(fn):
    """Normal result or the exception, normalized for equality checks."""
    try:
        return ("ok", fn())
    except ReproError as exc:
        return ("raised", type(exc).__name__, str(exc))
    except KeyError as exc:
        return ("raised", "KeyError", str(exc))


def _run_outcome(model, inputs, record, plan, prefix=False):
    cache.configure(plan=plan, prefix=prefix)
    interp = Interpreter(record_intermediates=record)
    return _outcome(lambda: interp.run_detailed(model, inputs))


def _assert_same_run(legacy, compiled):
    assert legacy[0] == compiled[0], (legacy, compiled)
    if legacy[0] == "raised":
        assert legacy[1:] == compiled[1:]
        return
    a, b = legacy[1], compiled[1]
    assert list(a.outputs) == list(b.outputs)
    for name in a.outputs:
        assert _same_array(a.outputs[name], b.outputs[name]), name
    assert list(a.values) == list(b.values)
    for name in a.values:
        assert _same_array(a.values[name], b.values[name]), name
    assert a.first_exceptional_node == b.first_exceptional_node
    assert a.exceptional_nodes == b.exceptional_nodes
    assert a.peak_live_values == b.peak_live_values


def _chain_model(depth, tag="c", op="Relu"):
    """x -> op -> op -> ...; value names carry ``tag`` so two structurally
    identical chains can have disjoint name sets."""
    model = Model(f"chain-{tag}")
    model.add_input(f"{tag}_x", TensorType((4, 4), DType.float32))
    previous = f"{tag}_x"
    for index in range(depth):
        out = f"{tag}_v{index}"
        model.add_node(Node(op, f"{tag}_{op.lower()}{index}",
                            [previous], [out]),
                       [TensorType((4, 4), DType.float32)])
        previous = out
    model.mark_output(previous)
    return model


# --------------------------------------------------------------------------- #
# Sequential equivalence: compiled path vs legacy dict loop
# --------------------------------------------------------------------------- #
class TestSequentialEquivalence:
    @pytest.mark.parametrize("record", [False, True])
    def test_mlp_bit_identical(self, record):
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(7))
        assert cache.compiled_execution(model)[0] is not None
        legacy = _run_outcome(model, inputs, record, plan=False)
        compiled = _run_outcome(model, inputs, record, plan=True)
        assert legacy[0] == "ok"
        _assert_same_run(legacy, compiled)

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_models_bit_identical(self, seed):
        try:
            generated = generate_model(GeneratorConfig(n_nodes=6, seed=seed))
        except GenerationError:
            pytest.skip("generator gave up for this seed")
        model = generated.model
        inputs = random_inputs(model, np.random.default_rng(seed))
        assert compile_plan(model, cache.execution_plan(model)) is not None
        for record in (False, True):
            _assert_same_run(
                _run_outcome(model, inputs, record, plan=False),
                _run_outcome(model, inputs, record, plan=True))

    def test_exceptional_values_tracked_identically(self):
        # Log of a negative input manufactures NaNs mid-graph; both loops
        # must agree on which nodes went exceptional, and in what order.
        model = _chain_model(3, tag="nan", op="Log")
        inputs = {"nan_x": np.full((4, 4), -2.0, dtype=np.float32)}
        legacy = _run_outcome(model, inputs, False, plan=False)
        compiled = _run_outcome(model, inputs, False, plan=True)
        _assert_same_run(legacy, compiled)
        assert legacy[1].first_exceptional_node == "nan_log0"
        assert len(legacy[1].exceptional_nodes) == 3

    def test_missing_and_misshapen_inputs_raise_identically(self):
        model = build_mlp_model()
        good = random_inputs(model, np.random.default_rng(0))
        (name,) = list(good)
        bad_shape = {name: np.zeros((1, 1), dtype=np.float32)}
        for bad in ({}, bad_shape):
            _assert_same_run(
                _run_outcome(model, bad, False, plan=False),
                _run_outcome(model, bad, False, plan=True))


class TestTerminalErrorParity:
    def test_unsupported_operator_raises_after_prior_steps(self):
        model = _chain_model(2, tag="u")
        model.add_node(Node("NoSuchOp", "u_weird", ["u_v1"], ["u_bad"]),
                       [TensorType((4, 4), DType.float32)])
        model.mark_output("u_bad")
        inputs = {"u_x": np.ones((4, 4), dtype=np.float32)}
        legacy = _run_outcome(model, inputs, False, plan=False)
        compiled = _run_outcome(model, inputs, False, plan=True)
        assert legacy == compiled
        assert legacy[1] == "UnsupportedOperatorError"
        assert "NoSuchOp" in legacy[2]

    def test_unavailable_input_raises_identically(self):
        # Simulate a mutilated graph (the LEMON-mutation hazard): drop the
        # producer of v0 so the next node consumes a value that never exists.
        model = _chain_model(3, tag="g")
        del model.nodes[0]
        model.structure_version += 1
        inputs = {"g_x": np.ones((4, 4), dtype=np.float32)}
        legacy = _run_outcome(model, inputs, False, plan=False)
        compiled = _run_outcome(model, inputs, False, plan=True)
        assert legacy == compiled
        assert legacy[1] == "GraphError"
        assert "unavailable value" in legacy[2]

    def test_unproduced_output_falls_back_to_legacy_loop(self):
        # A declared graph output nobody produces is one of the shapes the
        # slab cannot represent: compile_plan refuses and the interpreter
        # keeps the dict loop (whose KeyError we preserve verbatim).
        model = _chain_model(2, tag="o")
        del model.nodes[-1]
        model.structure_version += 1
        assert compile_plan(model, cache.execution_plan(model)) is None
        inputs = {"o_x": np.ones((4, 4), dtype=np.float32)}
        legacy = _run_outcome(model, inputs, False, plan=False)
        compiled = _run_outcome(model, inputs, False, plan=True)
        assert legacy == compiled
        assert legacy[1] == "KeyError"


# --------------------------------------------------------------------------- #
# Batched execution
# --------------------------------------------------------------------------- #
def _compiled_for(model):
    compiled, _plan = cache.compiled_execution(model)
    assert compiled is not None
    return compiled


def _sequential_outputs(model, batch):
    cache.configure(plan=False)
    interp = Interpreter(record_intermediates=False)
    outs = [interp.run_detailed(model, sample).outputs for sample in batch]
    cache.configure(plan=True)
    return outs


def _assert_batch_matches(model, batch):
    compiled = _compiled_for(model)
    batched = compiled.execute_batched(model, batch)
    sequential = _sequential_outputs(model, batch)
    assert len(batched) == len(sequential)
    for got, want in zip(batched, sequential):
        assert list(got) == list(want)
        for name in want:
            assert _same_array(np.asarray(got[name]), want[name]), name


class TestBatchedExecution:
    def test_mlp_batch_matches_sequential(self):
        model = build_mlp_model()
        batch = [random_inputs(model, np.random.default_rng(seed))
                 for seed in range(5)]
        _assert_batch_matches(model, batch)

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_models_batch_matches_sequential(self, seed):
        try:
            generated = generate_model(GeneratorConfig(n_nodes=6, seed=seed))
        except GenerationError:
            pytest.skip("generator gave up for this seed")
        model = generated.model
        batch = [random_inputs(model, np.random.default_rng(100 * seed + k))
                 for k in range(3)]
        try:
            _assert_batch_matches(model, batch)
        except ReproError:
            # The model fails on these inputs in *both* modes; sequential
            # equivalence tests already pin exception parity.
            cache.configure(plan=True)

    def test_identical_samples_evaluated_once_and_shared(self):
        # All-equal batch inputs stay unbatched: one kernel sweep, every
        # sample's output dict aliasing the same arrays.
        model = build_mlp_model()
        sample = random_inputs(model, np.random.default_rng(3))
        compiled = _compiled_for(model)
        batched = compiled.execute_batched(model, [sample, dict(sample), dict(sample)])
        for name in batched[0]:
            assert batched[0][name] is batched[1][name]
            assert batched[1][name] is batched[2][name]
        (want,) = _sequential_outputs(model, [sample])
        for name in want:
            assert _same_array(np.asarray(batched[0][name]), want[name])

    def test_positive_axis_softmax_falls_back_per_sample(self):
        # axis=0 would be shifted by a leading batch dimension; the batch-
        # safety gate must refuse and restack per-sample results instead.
        model = Model("sm")
        model.add_input("x", TensorType((3, 4), DType.float32))
        model.add_node(Node("Softmax", "sm0", ["x"], ["y"],
                            attrs={"axis": 0}),
                       [TensorType((3, 4), DType.float32)])
        model.mark_output("y")
        compiled = _compiled_for(model)
        assert not compiled._batch_safe(
            "Softmax", {"axis": 0},
            [np.zeros((2, 3, 4), dtype=np.float32)], [True])
        batch = [{"x": np.random.default_rng(k).normal(
            size=(3, 4)).astype(np.float32)} for k in range(4)]
        _assert_batch_matches(model, batch)

    def test_negative_axis_softmax_batches_in_one_sweep(self):
        model = Model("smn")
        model.add_input("x", TensorType((3, 4), DType.float32))
        model.add_node(Node("Softmax", "sm0", ["x"], ["y"],
                            attrs={"axis": -1}),
                       [TensorType((3, 4), DType.float32)])
        model.mark_output("y")
        compiled = _compiled_for(model)
        assert compiled._batch_safe(
            "Softmax", {"axis": -1},
            [np.zeros((2, 3, 4), dtype=np.float32)], [True])
        batch = [{"x": np.random.default_rng(k).normal(
            size=(3, 4)).astype(np.float32)} for k in range(4)]
        _assert_batch_matches(model, batch)

    def test_mixed_batched_and_shared_operands(self):
        # a varies across the batch, b is constant: Add sees one stacked and
        # one shared operand and must still match per-sample runs.
        model = Model("mixed")
        model.add_input("a", TensorType((2, 3), DType.float32))
        model.add_input("b", TensorType((2, 3), DType.float32))
        model.add_node(Node("Add", "add0", ["a", "b"], ["y"]),
                       [TensorType((2, 3), DType.float32)])
        model.mark_output("y")
        shared = np.arange(6, dtype=np.float32).reshape(2, 3)
        batch = [{"a": np.full((2, 3), float(k), dtype=np.float32),
                  "b": shared} for k in range(4)]
        _assert_batch_matches(model, batch)

    def test_rank2_matmul_batches_as_stacked_gemm(self):
        model = Model("mm")
        model.add_input("a", TensorType((4, 3), DType.float32))
        model.add_input("b", TensorType((3, 5), DType.float32))
        model.add_node(Node("MatMul", "mm0", ["a", "b"], ["y"]),
                       [TensorType((4, 5), DType.float32)])
        model.mark_output("y")
        compiled = _compiled_for(model)
        assert compiled._batch_safe(
            "MatMul", {},
            [np.zeros((2, 4, 3), dtype=np.float32),
             np.zeros((2, 3, 5), dtype=np.float32)], [True, True])
        rng = np.random.default_rng(0)
        batch = [{"a": rng.normal(size=(4, 3)).astype(np.float32),
                  "b": rng.normal(size=(3, 5)).astype(np.float32)}
                 for _ in range(4)]
        _assert_batch_matches(model, batch)


# --------------------------------------------------------------------------- #
# Cross-iteration subgraph-prefix value cache
# --------------------------------------------------------------------------- #
def _prefix_stats():
    return cache.stats_snapshot()["prefix"]


class TestPrefixCache:
    def test_repeat_run_hits_and_stays_bit_identical(self):
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(11))
        cold = _run_outcome(model, inputs, False, plan=True, prefix=True)
        assert _prefix_stats() == {"hits": 0, "misses": 1}
        warm = _run_outcome(model, inputs, False, plan=True, prefix=True)
        assert _prefix_stats()["hits"] == 1
        _assert_same_run(cold, warm)

    def test_structural_hit_across_models_with_different_names(self):
        # Canonical-position fingerprints: a motif re-generated under fresh
        # value names in a later iteration reuses the cached prefix.
        data = np.random.default_rng(5).normal(size=(4, 4)).astype(np.float32)
        first = _chain_model(6, tag="aa")
        second = _chain_model(6, tag="bb")
        cold = _run_outcome(first, {"aa_x": data}, False, plan=True,
                            prefix=True)
        warm = _run_outcome(second, {"bb_x": data}, False, plan=True,
                            prefix=True)
        assert _prefix_stats()["hits"] == 1
        for got, want in zip(warm[1].outputs.values(),
                             cold[1].outputs.values()):
            assert _same_array(got, want)

    def test_different_input_content_misses(self):
        model = build_mlp_model()
        _run_outcome(model, random_inputs(model, np.random.default_rng(1)),
                     False, plan=True, prefix=True)
        _run_outcome(model, random_inputs(model, np.random.default_rng(2)),
                     False, plan=True, prefix=True)
        assert _prefix_stats() == {"hits": 0, "misses": 2}

    def test_record_mode_bypasses_the_prefix_cache(self):
        # Recorded runs must surface every intermediate; serving a boundary
        # would skip them, so the cache is neither read nor written.
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(4))
        _run_outcome(model, inputs, True, plan=True, prefix=True)
        _run_outcome(model, inputs, True, plan=True, prefix=True)
        assert _prefix_stats() == {"hits": 0, "misses": 0}

    def test_disabled_prefix_layer_is_silent(self):
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(4))
        _run_outcome(model, inputs, False, plan=True, prefix=False)
        _run_outcome(model, inputs, False, plan=True, prefix=False)
        assert _prefix_stats() == {"hits": 0, "misses": 0}

    def test_prefix_hit_preserves_exceptional_provenance(self):
        # NaNs manufactured inside a served prefix must still be attributed
        # to their producing nodes on the warm run.
        model = _chain_model(5, tag="ex", op="Log")
        inputs = {"ex_x": np.full((4, 4), -3.0, dtype=np.float32)}
        cold = _run_outcome(model, inputs, False, plan=True, prefix=True)
        warm = _run_outcome(model, inputs, False, plan=True, prefix=True)
        assert _prefix_stats()["hits"] == 1
        _assert_same_run(cold, warm)
        assert warm[1].first_exceptional_node == "ex_log0"
        assert len(warm[1].exceptional_nodes) == 5

    def test_served_boundaries_are_immutable_copies(self):
        # A caller mutating outputs of a warm run must not poison the cache
        # for the next hit.
        model = _chain_model(4, tag="mut")
        inputs = {"mut_x": np.ones((4, 4), dtype=np.float32)}
        cold = _run_outcome(model, inputs, False, plan=True, prefix=True)
        warm1 = _run_outcome(model, inputs, False, plan=True, prefix=True)
        with pytest.raises(ValueError):
            next(iter(warm1[1].outputs.values()))[0, 0] = 99.0
        warm2 = _run_outcome(model, inputs, False, plan=True, prefix=True)
        for got, want in zip(warm2[1].outputs.values(),
                             cold[1].outputs.values()):
            assert _same_array(got, want)

    def test_lru_bound_evicts_oldest(self):
        hot = cache.get_cache()
        for index in range(cache.PREFIX_CAPACITY + 5):
            hot.prefix_put(("struct", index), object())
        assert len(hot._prefix) == cache.PREFIX_CAPACITY
        assert hot.prefix_get(("struct", 0)) is None
        assert hot.prefix_get(("struct", cache.PREFIX_CAPACITY + 4)) is not None


# --------------------------------------------------------------------------- #
# Batched gradcheck support
# --------------------------------------------------------------------------- #
class TestBatchedReferenceRunner:
    def test_disabled_plan_layer_yields_no_runner(self):
        cache.configure(plan=False)
        assert batched_reference_runner(build_mlp_model()) is None
        cache.configure(enabled=False, plan=True)
        assert batched_reference_runner(build_mlp_model()) is None
        cache.configure(enabled=True)

    def test_runner_matches_sequential_interpreter(self):
        model = build_mlp_model()
        runner = batched_reference_runner(model)
        assert runner is not None
        batch = [random_inputs(model, np.random.default_rng(seed))
                 for seed in range(4)]
        got = runner(batch)
        want = _sequential_outputs(model, batch)
        for got_sample, want_sample in zip(got, want):
            for name in want_sample:
                assert _same_array(np.asarray(got_sample[name]),
                                   want_sample[name])

    def test_uncompilable_model_yields_no_runner(self):
        model = _chain_model(2, tag="nr")
        del model.nodes[-1]
        model.structure_version += 1
        assert batched_reference_runner(model) is None


# --------------------------------------------------------------------------- #
# Per-closure timing and slow-node attribution
# --------------------------------------------------------------------------- #
class _FakeProfiled:
    """Executable double with a scripted ``profile_nodes`` hook; each call
    pops the next script (the last one repeats)."""

    def __init__(self, *scripts):
        self._scripts = list(scripts)

    def profile_nodes(self, inputs, timer):
        script = self._scripts[0]
        if len(self._scripts) > 1:
            self._scripts.pop(0)
        return list(script)


class TestProfileHook:
    def test_profile_times_every_step(self, mlp_model):
        compiled = _compiled_for(mlp_model)
        inputs = random_inputs(mlp_model, np.random.default_rng(0))
        outputs, times = compiled.profile(mlp_model, inputs,
                                          time.perf_counter)
        assert [op for _name, op, _sec in times] == \
            [node.op for node in mlp_model.topological_order()]
        assert all(seconds >= 0.0 for _n, _o, seconds in times)
        want = Interpreter().run_detailed(mlp_model, inputs).outputs
        for name in want:
            assert _same_array(outputs[name], want[name])


class TestSlowNodeAttribution:
    def test_dominant_excess_node_is_named(self):
        optimized = _FakeProfiled([("n0", "Gemm", 0.010),
                                   ("n1", "Relu", 0.001)])
        baseline = _FakeProfiled([("n0", "Gemm", 0.001),
                                  ("n1", "Relu", 0.001)])
        slow = attribute_slow_nodes(optimized, baseline, {}, repeats=1)
        assert slow == [{"node": "n0", "op": "Gemm", "share": "100%"}]

    def test_min_of_repeats_discards_noise_spikes(self):
        # First optimized sample is a 20x outlier; min-of-repeats keeps the
        # clean 2ms reading and the excess shrinks accordingly.
        optimized = _FakeProfiled([("n0", "Gemm", 0.040)],
                                  [("n0", "Gemm", 0.002)])
        baseline = _FakeProfiled([("n0", "Gemm", 0.001)])
        slow = attribute_slow_nodes(optimized, baseline, {}, repeats=2)
        assert slow == [{"node": "n0", "op": "Gemm", "share": "100%"}]

    def test_share_floor_truncates_the_tail(self):
        optimized = _FakeProfiled([("n0", "MatMul", 0.80),
                                   ("n1", "Add", 0.15),
                                   ("n2", "Relu", 0.05)])
        baseline = _FakeProfiled([("n0", "MatMul", 0.0),
                                  ("n1", "Add", 0.0),
                                  ("n2", "Relu", 0.0)])
        slow = attribute_slow_nodes(optimized, baseline, {}, repeats=1,
                                    share_floor=0.8)
        assert slow == [{"node": "n0", "op": "MatMul", "share": "80%"}]

    def test_no_positive_excess_returns_nothing(self):
        same = [("n0", "Gemm", 0.002), ("n1", "Relu", 0.001)]
        slow = attribute_slow_nodes(_FakeProfiled(same), _FakeProfiled(same),
                                    {}, repeats=1)
        assert slow == []

    def test_executables_without_hook_are_skipped(self):
        class _Plain:
            pass

        assert attribute_slow_nodes(_Plain(), _Plain(), {}) == []
        assert attribute_slow_nodes(_FakeProfiled([]), _Plain(), {}) == []

    def test_profiler_failure_is_swallowed(self):
        class _Broken:
            def profile_nodes(self, inputs, timer):
                raise ExecutionError("kernel exploded mid-profile")

        baseline = _FakeProfiled([("n0", "Gemm", 0.001)])
        assert attribute_slow_nodes(_Broken(), baseline, {}) == []
