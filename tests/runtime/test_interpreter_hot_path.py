"""Interpreter hot-path regressions: initializer aliasing, integer sampling
bounds, and eager dead-value dropping (ISSUE 7 satellites)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph.model import Model
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.runtime.interpreter import (Interpreter, random_inputs,
                                       random_weights)
from repro.testing import build_mlp_model


def _chain_model(depth: int) -> Model:
    """x -> Relu -> Relu -> ... -> output, one value live at a time."""
    model = Model("chain")
    model.add_input("x", TensorType((4, 4), DType.float32))
    previous = "x"
    for index in range(depth):
        out = f"v{index}"
        model.add_node(Node("Relu", f"relu{index}", [previous], [out]),
                       [TensorType((4, 4), DType.float32)])
        previous = out
    model.mark_output(previous)
    return model


class TestInitializerAliasing:
    def test_values_expose_readonly_views_of_initializers(self):
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(0))
        run = Interpreter(record_intermediates=True).run_detailed(model, inputs)
        for name in model.initializers:
            view = run.values[name]
            assert view.flags.writeable is False
            with pytest.raises(ValueError):
                view[(0,) * view.ndim] = 0.0

    def test_caller_mutation_cannot_corrupt_model_weights(self):
        model = build_mlp_model()
        frozen = {name: array.copy()
                  for name, array in model.initializers.items()}
        inputs = random_inputs(model, np.random.default_rng(1))
        run = Interpreter(record_intermediates=True).run_detailed(model, inputs)
        for name, view in run.values.items():
            if name in model.initializers:
                with pytest.raises(ValueError):
                    view += 1.0
        for name, original in frozen.items():
            np.testing.assert_array_equal(model.initializers[name], original)

    def test_repeated_runs_identical(self):
        model = build_mlp_model()
        inputs = random_inputs(model, np.random.default_rng(2))
        interp = Interpreter(record_intermediates=False)
        first = interp.run_detailed(model, inputs)
        second = interp.run_detailed(model, inputs)
        for name in first.outputs:
            np.testing.assert_array_equal(first.outputs[name],
                                          second.outputs[name])


class TestIntegerBounds:
    def _int_model(self):
        model = Model("ints")
        model.add_input("x", TensorType((4000,), DType.int64))
        model.mark_output("x")
        return model

    def test_inclusive_default_covers_full_closed_range(self):
        data = random_inputs(self._int_model(),
                             np.random.default_rng(7))["x"]
        assert data.min() == 1
        assert data.max() == 9  # the closed range is the default since PR 9

    def test_inclusive_stream_is_pinned(self):
        # The campaign seed contract: the default integer stream is exactly
        # rng.integers(int(low), int(high) + 1).  Every pinned smoke seed
        # and the regenerated corpus depend on it.
        data = random_inputs(self._int_model(),
                             np.random.default_rng(29))["x"]
        expected = np.random.default_rng(29).integers(1, 10, size=(4000,))
        np.testing.assert_array_equal(data, expected.astype(np.int64))

    def test_legacy_stream_is_pinned(self):
        # The opt-out keeps pre-PR-9 seeds replayable: exactly
        # rng.integers(int(low), max(int(high), int(low) + 1)).
        data = random_inputs(self._int_model(), np.random.default_rng(29),
                             int_bounds="legacy")["x"]
        expected = np.random.default_rng(29).integers(1, 9, size=(4000,))
        np.testing.assert_array_equal(data, expected.astype(np.int64))

    def test_legacy_never_samples_high(self):
        data = random_inputs(self._int_model(), np.random.default_rng(7),
                             int_bounds="legacy")["x"]
        assert data.min() >= 1
        assert data.max() == 8  # 9 is unreachable on the legacy stream

    def test_legacy_degenerates_when_bounds_share_floor(self):
        data = random_inputs(self._int_model(), np.random.default_rng(3),
                             low=2.0, high=2.9, int_bounds="legacy")["x"]
        assert set(np.unique(data)) == {2}

    def test_inclusive_still_spans_sub_integer_ranges(self):
        data = random_inputs(self._int_model(), np.random.default_rng(3),
                             low=2.0, high=2.9)["x"]
        assert set(np.unique(data)) == {2}  # [2, 2] closed range, no crash

    def test_random_weights_follow_the_same_knob(self):
        model = Model("w")
        model.add_input("x", TensorType((1,), DType.float32))
        model.add_initializer("w", np.arange(4000, dtype=np.int64))
        model.mark_output("x")
        inclusive = random_weights(model, np.random.default_rng(5))["w"]
        assert inclusive.max() == 9
        legacy = random_weights(model, np.random.default_rng(5),
                                int_bounds="legacy")["w"]
        assert legacy.max() == 8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="int_bounds"):
            random_inputs(self._int_model(), np.random.default_rng(0),
                          int_bounds="typo")


class TestEagerDrop:
    def test_peak_liveness_shrinks_on_deep_chain(self):
        model = _chain_model(30)
        inputs = {"x": np.ones((4, 4), dtype=np.float32)}
        recorded = Interpreter(record_intermediates=True).run_detailed(
            model, inputs)
        lean = Interpreter(record_intermediates=False).run_detailed(
            model, inputs)
        # Recording keeps all 31 values; the eager path holds at most the
        # input plus a producer/consumer pair at any step.
        assert recorded.peak_live_values == 31
        assert lean.peak_live_values <= 3
        np.testing.assert_array_equal(recorded.outputs["v29"],
                                      lean.outputs["v29"])

    def test_lean_run_reports_no_intermediates(self):
        model = _chain_model(5)
        run = Interpreter(record_intermediates=False).run_detailed(
            model, {"x": np.ones((4, 4), dtype=np.float32)})
        assert run.values == {}
        assert set(run.outputs) == {"v4"}

    def test_fanout_value_survives_until_last_consumer(self):
        # x feeds both an early and a late consumer; dropping it after the
        # first read would crash the second.
        model = Model("fanout")
        model.add_input("x", TensorType((4,), DType.float32))
        model.add_node(Node("Relu", "r", ["x"], ["a"]),
                       [TensorType((4,), DType.float32)])
        model.add_node(Node("Neg", "n", ["a"], ["b"]),
                       [TensorType((4,), DType.float32)])
        model.add_node(Node("Add", "s", ["b", "x"], ["c"]),
                       [TensorType((4,), DType.float32)])
        model.mark_output("c")
        x = np.array([1.0, -2.0, 3.0, -4.0], dtype=np.float32)
        run = Interpreter(record_intermediates=False).run_detailed(
            model, {"x": x})
        np.testing.assert_allclose(run.outputs["c"],
                                   -np.maximum(x, 0.0) + x)

    def test_exceptional_node_tracking_unchanged(self):
        model = Model("nan")
        model.add_input("x", TensorType((2,), DType.float32))
        model.add_node(Node("Log", "log", ["x"], ["y"]),
                       [TensorType((2,), DType.float32)])
        model.add_node(Node("Relu", "relu", ["y"], ["z"]),
                       [TensorType((2,), DType.float32)])
        model.mark_output("z")
        run = Interpreter(record_intermediates=False).run_detailed(
            model, {"x": np.array([-1.0, 1.0], dtype=np.float32)})
        assert run.first_exceptional_node == "log"
        assert not run.numerically_valid
