"""Tests for the reference interpreter and the model exporter."""

import numpy as np
import pytest

from repro.compilers.bugs import BugConfig
from repro.dtypes import DType
from repro.errors import ExecutionError
from repro.graph.builder import GraphBuilder
from repro.runtime import (
    ExportReport,
    Interpreter,
    export_model,
    random_inputs,
    random_weights,
)

from repro.testing import build_conv_model, build_mlp_model


class TestInterpreter:
    def test_runs_and_records_intermediates(self, mlp_model, rng):
        inputs = random_inputs(mlp_model, rng)
        result = Interpreter().run_detailed(mlp_model, inputs)
        assert set(result.outputs) == set(mlp_model.outputs)
        for node in mlp_model.nodes:
            for output in node.outputs:
                assert output in result.values

    def test_missing_input_rejected(self, mlp_model):
        with pytest.raises(ExecutionError):
            Interpreter().run(mlp_model, {})

    def test_wrong_input_shape_rejected(self, mlp_model):
        bad = {mlp_model.inputs[0]: np.zeros((1, 1), dtype=np.float32)}
        with pytest.raises(ExecutionError):
            Interpreter().run(mlp_model, bad)

    def test_numerical_validity_flags(self):
        builder = GraphBuilder("nan")
        x = builder.input([3])
        log = builder.op1("Log", [x])
        builder.op1("Relu", [log])
        model = builder.build()
        result = Interpreter().run_detailed(model, {x: np.array([-1.0, 1.0, 2.0],
                                                                dtype=np.float32)})
        assert not result.numerically_valid
        assert result.first_exceptional_node == model.nodes[0].name

    def test_internal_nan_detected_even_if_outputs_finite(self):
        """ArgMax can mask upstream NaN (the paper's subtle requirement)."""
        builder = GraphBuilder("masked")
        x = builder.input([4])
        log = builder.op1("Log", [x])
        builder.op1("ArgMax", [log], axis=0)
        model = builder.build()
        result = Interpreter().run_detailed(
            model, {x: np.array([-1.0, 1.0, 2.0, 3.0], dtype=np.float32)})
        assert np.all(np.isfinite(list(result.outputs.values())[0]))
        assert not result.numerically_valid

    def test_valid_execution_flag(self, conv_model, rng):
        result = Interpreter().run_detailed(conv_model, random_inputs(conv_model, rng))
        assert result.numerically_valid

    def test_random_inputs_respect_types(self, rng):
        builder = GraphBuilder("types")
        builder.input([2, 2], DType.float32, name="f")
        builder.input([3], DType.int64, name="i")
        builder.input([4], DType.bool_, name="b")
        builder.op1("Relu", [ "f" ])
        model = builder.build()
        values = random_inputs(model, rng)
        assert values["f"].dtype == np.float32
        assert values["i"].dtype == np.int64
        assert values["b"].dtype == np.bool_

    def test_random_weights_match_shapes(self, mlp_model, rng):
        weights = random_weights(mlp_model, rng)
        for name, array in weights.items():
            assert array.shape == mlp_model.initializers[name].shape


class TestExporter:
    def test_export_is_equivalent_without_bugs(self, conv_model, rng):
        exported = export_model(conv_model, bugs=BugConfig.none())
        inputs = random_inputs(conv_model, rng)
        ref = Interpreter().run(conv_model, inputs)
        out = Interpreter().run(exported, inputs)
        for key in ref:
            np.testing.assert_allclose(ref[key], out[key], rtol=1e-6)

    def test_log2_scalar_rank_bug(self):
        builder = GraphBuilder("log2")
        x = builder.input([], DType.float32)
        builder.op1("Log2", [x])
        model = builder.build()
        report = ExportReport()
        exported = export_model(model, BugConfig.only("exporter-log2-scalar-rank"),
                                report)
        assert report.triggered_bugs == ["exporter-log2-scalar-rank"]
        assert exported.type_of(exported.outputs[0]).shape == (1,)

    def test_clip_int32_bug_marks_node(self):
        builder = GraphBuilder("clip")
        x = builder.input([4], DType.int32)
        builder.op1("Clip", [x], min=0, max=3)
        model = builder.build()
        report = ExportReport()
        exported = export_model(model, BugConfig.only("exporter-clip-int32-opset"),
                                report)
        assert report.triggered_bugs == ["exporter-clip-int32-opset"]
        assert exported.nodes[0].attrs.get("opset_unsupported") is True

    def test_clip_float_not_affected(self):
        builder = GraphBuilder("clipf")
        x = builder.input([4], DType.float32)
        builder.op1("Clip", [x], min=0.0, max=3.0)
        model = builder.build()
        report = ExportReport()
        export_model(model, BugConfig.only("exporter-clip-int32-opset"), report)
        assert not report.triggered_bugs

    def test_pad_reflect_rank2_bug(self):
        builder = GraphBuilder("pad")
        x = builder.input([3, 4], DType.float32)
        builder.op1("Pad", [x], pads=[1, 2, 1, 2], mode="reflect")
        model = builder.build()
        report = ExportReport()
        exported = export_model(model, BugConfig.only("exporter-pad-reflect-rank2"),
                                report)
        assert report.triggered_bugs == ["exporter-pad-reflect-rank2"]
        assert exported.nodes[0].attrs["pads"] == [2, 1, 2, 1]

    def test_no_bugs_no_reports(self, conv_model):
        report = ExportReport()
        export_model(conv_model, BugConfig.none(), report)
        assert not report.triggered_bugs
