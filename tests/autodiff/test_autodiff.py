"""Tests for the autodiff engine: VJPs, graph backprop and optimizers."""

import numpy as np
import pytest

from repro.autodiff import Adam, DEFAULT_PROXY, NO_PROXY, SGD, backpropagate, unbroadcast
from repro.autodiff.vjp import backward_node, has_vjp
from repro.dtypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.registry import all_ops
from repro.ops.semantics import execute_node
from repro.runtime.interpreter import Interpreter


def _numeric_grad(op, attrs, inputs, which, epsilon=1e-5):
    """Central-difference gradient of sum(output) w.r.t. inputs[which]."""
    node = Node(op, "n", [], [], attrs)
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[which])
    flat = grad.reshape(-1)
    for index in range(flat.size):
        for sign in (+1, -1):
            perturbed = [np.array(x, copy=True) for x in base]
            perturbed[which].reshape(-1)[index] += sign * epsilon
            out = execute_node(node, perturbed)[0].astype(np.float64).sum()
            flat[index] += sign * out / (2 * epsilon)
    return grad


GRAD_CHECK_CASES = [
    ("Relu", {}, [np.array([0.5, -0.3, 1.2])]),
    ("Sigmoid", {}, [np.array([0.2, -0.7])]),
    ("Tanh", {}, [np.array([0.2, -0.7])]),
    ("Exp", {}, [np.array([0.1, 0.5])]),
    ("Log", {}, [np.array([0.5, 2.0])]),
    ("Sqrt", {}, [np.array([0.5, 2.0])]),
    ("Abs", {}, [np.array([0.5, -2.0])]),
    ("Neg", {}, [np.array([0.5, -2.0])]),
    ("Softmax", {"axis": 0}, [np.array([0.5, 1.5, -0.5])]),
    ("Add", {}, [np.array([[1.0, 2.0]]), np.array([[3.0], [4.0]])]),
    ("Sub", {}, [np.array([1.0, 2.0]), np.array([3.0, 4.0])]),
    ("Mul", {}, [np.array([1.0, 2.0]), np.array([3.0, 4.0])]),
    ("Div", {}, [np.array([1.0, 2.0]), np.array([3.0, 4.0])]),
    ("Max", {}, [np.array([1.0, 5.0]), np.array([3.0, 4.0])]),
    ("MatMul", {}, [np.arange(6, dtype=np.float64).reshape(2, 3) * 0.3,
                    np.arange(12, dtype=np.float64).reshape(3, 4) * 0.1]),
    ("Gemm", {}, [np.arange(6, dtype=np.float64).reshape(2, 3) * 0.3,
                  np.arange(12, dtype=np.float64).reshape(3, 4) * 0.1,
                  np.arange(4, dtype=np.float64) * 0.2]),
    ("Conv2d", {"stride": 1, "padding": 1},
     [np.random.default_rng(0).normal(size=(1, 2, 4, 4)),
      np.random.default_rng(1).normal(size=(3, 2, 3, 3))]),
    ("MaxPool2d", {"kh": 2, "kw": 2, "stride": 2, "padding": 0},
     [np.random.default_rng(2).normal(size=(1, 1, 4, 4))]),
    ("AvgPool2d", {"kh": 2, "kw": 2, "stride": 1, "padding": 0},
     [np.random.default_rng(3).normal(size=(1, 1, 4, 4))]),
    ("GlobalAvgPool2d", {}, [np.random.default_rng(4).normal(size=(1, 2, 3, 3))]),
    ("Reshape", {"shape": [6]}, [np.arange(6, dtype=np.float64).reshape(2, 3)]),
    ("Transpose", {"perm": [1, 0]}, [np.arange(6, dtype=np.float64).reshape(2, 3)]),
    ("Slice", {"starts": [1], "ends": [3], "axes": [0], "steps": [1]},
     [np.arange(4, dtype=np.float64)]),
    ("Pad", {"pads": [1, 1], "mode": "constant", "value": 0.0},
     [np.arange(3, dtype=np.float64)]),
    ("Pad", {"pads": [1, -1], "mode": "constant", "value": 0.0},
     [np.arange(4, dtype=np.float64)]),
    ("BroadcastTo", {"shape": [2, 3]}, [np.array([[1.0], [2.0]])]),
    ("ReduceSum", {"axes": [1], "keepdims": False},
     [np.arange(6, dtype=np.float64).reshape(2, 3)]),
    ("ReduceMean", {"axes": [0], "keepdims": True},
     [np.arange(6, dtype=np.float64).reshape(2, 3)]),
    ("ReduceMax", {"axes": [1], "keepdims": False},
     [np.array([[1.0, 5.0, 2.0], [7.0, 1.0, 3.0]])]),
    ("BatchNorm", {"epsilon": 1e-5},
     [np.random.default_rng(5).normal(size=(2, 3, 2, 2)),
      np.array([1.0, 2.0, 0.5]), np.array([0.1, -0.2, 0.3]),
      np.array([0.0, 0.5, -0.5]), np.array([1.0, 2.0, 1.5])]),
    ("Concat", {"axis": 0}, [np.array([1.0, 2.0]), np.array([3.0])]),
    ("Where", {}, [np.array([True, False]), np.array([1.0, 2.0]),
                   np.array([3.0, 4.0])]),
]


@pytest.mark.parametrize("op,attrs,inputs", GRAD_CHECK_CASES,
                         ids=[f"{c[0]}-{i}" for i, c in enumerate(GRAD_CHECK_CASES)])
def test_vjp_matches_numeric_gradient(op, attrs, inputs):
    node = Node(op, "n", [], [], attrs)
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    outputs = execute_node(node, arrays)
    seed = [np.ones(out.shape, dtype=np.float64) for out in outputs]
    # Exact-gradient check: proxy derivatives intentionally deviate from the
    # true derivative in zero-gradient regions, so they are disabled here.
    analytic = backward_node(node, arrays, outputs, seed, NO_PROXY)
    for index, array in enumerate(arrays):
        if array.dtype.kind == "b":
            continue
        numeric = _numeric_grad(op, attrs, arrays, index)
        np.testing.assert_allclose(analytic[index], numeric, rtol=1e-3, atol=1e-4,
                                   err_msg=f"{op} input {index}")


class TestUnbroadcast:
    def test_reduces_leading_axes(self):
        grad = np.ones((4, 3, 2))
        reduced = unbroadcast(grad, (3, 2))
        assert reduced.shape == (3, 2)
        np.testing.assert_allclose(reduced, 4 * np.ones((3, 2)))

    def test_reduces_broadcast_dims(self):
        grad = np.ones((4, 3))
        reduced = unbroadcast(grad, (4, 1))
        assert reduced.shape == (4, 1)
        np.testing.assert_allclose(reduced, 3 * np.ones((4, 1)))

    def test_noop_when_same_shape(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)).shape == (2, 2)


class TestProxyDerivatives:
    def test_relu_zero_region(self):
        node = Node("Relu", "r", [], [])
        x = np.array([-1.0, -2.0])
        y = execute_node(node, [x])
        with_proxy = backward_node(node, [x], y, [np.ones(2)], DEFAULT_PROXY)[0]
        without = backward_node(node, [x], y, [np.ones(2)], NO_PROXY)[0]
        assert np.all(with_proxy > 0)
        assert np.all(without == 0)

    def test_floor_straight_through(self):
        node = Node("Floor", "f", [], [])
        x = np.array([1.3, 2.9])
        y = execute_node(node, [x])
        with_proxy = backward_node(node, [x], y, [np.ones(2)], DEFAULT_PROXY)[0]
        without = backward_node(node, [x], y, [np.ones(2)], NO_PROXY)[0]
        np.testing.assert_allclose(with_proxy, np.ones(2))
        np.testing.assert_allclose(without, np.zeros(2))

    def test_comparison_has_zero_grad(self):
        node = Node("Greater", "g", [], [])
        x = [np.array([1.0]), np.array([2.0])]
        y = execute_node(node, x)
        grads = backward_node(node, x, y, [np.ones(1)])
        assert all(np.all(g == 0) for g in grads)

    def test_every_registered_op_has_vjp(self):
        for info in all_ops():
            assert has_vjp(info.name), f"missing VJP for {info.name}"


class TestGraphBackprop:
    def test_chain_rule_through_mlp(self, mlp_model, rng):
        from repro.runtime.interpreter import random_inputs

        inputs = random_inputs(mlp_model, rng)
        run = Interpreter().run_detailed(mlp_model, inputs)
        output_name = mlp_model.outputs[0]
        seed = {output_name: np.ones(run.outputs[output_name].shape)}
        grads = backpropagate(mlp_model, run.values, seed)
        for name in list(mlp_model.inputs) + list(mlp_model.initializers):
            assert name in grads
            assert grads[name].shape == mlp_model.type_of(name).shape

    def test_gradient_direction_reduces_loss(self):
        """One gradient step on sum(Sqrt(x)) loss-style objective moves x up."""
        builder = GraphBuilder("g")
        x = builder.input([3])
        out = builder.op1("Sqrt", [x])
        model = builder.build()
        values = {x: np.array([-1.0, -2.0, 4.0]), out: np.array([np.nan, np.nan, 2.0])}
        # Seed gradient of a "make x positive" hinge loss: dL/dx = -(x<=0).
        grads = backpropagate(model, values, {x: -(values[x] <= 0).astype(float)})
        assert grads[x][0] < 0 and grads[x][2] == 0

    def test_stop_after_limits_work(self, conv_model, rng):
        from repro.runtime.interpreter import random_inputs

        inputs = random_inputs(conv_model, rng)
        run = Interpreter().run_detailed(conv_model, inputs)
        first = conv_model.nodes[0]
        seed = {first.outputs[0]: np.ones(run.values[first.outputs[0]].shape)}
        grads = backpropagate(conv_model, run.values, seed, stop_after=first.name)
        assert grads[conv_model.inputs[0]].shape == conv_model.type_of(
            conv_model.inputs[0]).shape


class TestOptimizers:
    def test_adam_converges_on_quadratic(self):
        params = {"w": np.array([5.0, -3.0])}
        adam = Adam(learning_rate=0.3)
        for _ in range(200):
            grads = {"w": 2 * params["w"]}
            params = adam.step(params, grads)
        np.testing.assert_allclose(params["w"], np.zeros(2), atol=1e-2)

    def test_adam_reset(self):
        adam = Adam()
        adam.step({"w": np.ones(2)}, {"w": np.ones(2)})
        adam.reset()
        assert adam._step == 0

    def test_sgd_step(self):
        sgd = SGD(learning_rate=0.5)
        updated = sgd.step({"w": np.array([1.0])}, {"w": np.array([2.0])})
        np.testing.assert_allclose(updated["w"], [0.0])

    def test_adam_handles_missing_grad(self):
        adam = Adam()
        updated = adam.step({"w": np.ones(3)}, {})
        np.testing.assert_allclose(updated["w"], np.ones(3))
