"""Unit tests for the dtype system."""

import numpy as np
import pytest

from repro.dtypes import ALL_DTYPES, DType, FLOAT_DTYPES, INT_DTYPES, promote


class TestDTypeBasics:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_roundtrip_string(self, dtype):
        assert DType.from_str(str(dtype)) is dtype

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_roundtrip_numpy(self, dtype):
        assert DType.from_numpy(dtype.numpy) is dtype

    def test_from_str_unknown(self):
        with pytest.raises(ValueError):
            DType.from_str("float16")

    def test_from_numpy_unknown(self):
        with pytest.raises(ValueError):
            DType.from_numpy(np.complex64)

    @pytest.mark.parametrize("dtype", FLOAT_DTYPES)
    def test_float_flags(self, dtype):
        assert dtype.is_float and not dtype.is_int and not dtype.is_bool

    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_int_flags(self, dtype):
        assert dtype.is_int and not dtype.is_float

    def test_bool_flags(self):
        assert DType.bool_.is_bool
        assert not DType.bool_.is_float

    def test_bytes(self):
        assert DType.float32.bytes == 4
        assert DType.float64.bytes == 8
        assert DType.int64.bytes == 8
        assert DType.bool_.bytes == 1


class TestPromotion:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_promote_identity(self, dtype):
        assert promote(dtype, dtype) is dtype

    def test_promote_int_float(self):
        assert promote(DType.int32, DType.float32) is DType.float32
        assert promote(DType.float32, DType.int64) is DType.float32

    def test_promote_widths(self):
        assert promote(DType.int32, DType.int64) is DType.int64
        assert promote(DType.float32, DType.float64) is DType.float64

    def test_promote_bool_lowest(self):
        for dtype in ALL_DTYPES:
            assert promote(DType.bool_, dtype) is dtype

    def test_promote_commutative(self):
        for a in ALL_DTYPES:
            for b in ALL_DTYPES:
                assert promote(a, b) is promote(b, a)
