"""Tier-1 smoke for the transport benchmark harness (`make bench-transport`).

Asserts the harness runs, its JSON schema validates, and the transports
agree on findings — trajectory capture, never perf thresholds (CI machines
are too noisy for those; the ≤1.2× overhead target is checked on the
committed point a maintainer generated, not on CI timings)."""

import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TOOL_PATH = os.path.join(_REPO_ROOT, "tools", "bench_transport.py")
_COMMITTED = os.path.join(_REPO_ROOT, "benchmarks", "BENCH_8.json")


@pytest.fixture(scope="module")
def bench_tool():
    spec = importlib.util.spec_from_file_location("bench_transport",
                                                  _TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.campaign
def test_harness_runs_and_schema_validates(bench_tool, tmp_path):
    out = tmp_path / "BENCH_test.json"
    code = bench_tool.main(["--iterations", "4", "--output", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert bench_tool.validate_payload(payload) == []
    for name in bench_tool.TRANSPORT_NAMES:
        assert payload["transports"][name]["iterations_per_sec"] > 0
    # Correctness rides along: the two transports must agree bit-for-bit.
    assert payload["findings_equal"] is True
    # A 2-worker socket run claims at least one lease per worker.
    assert payload["transports"]["socket"]["lease_claims"] >= 2
    assert payload["transports"]["socket"]["lease_latency_mean_seconds"] > 0


def test_committed_trajectory_point_validates(bench_tool):
    assert os.path.exists(_COMMITTED), \
        "benchmarks/BENCH_8.json missing — run `make bench-transport`"
    payload = json.loads(open(_COMMITTED, encoding="utf-8").read())
    assert bench_tool.validate_payload(payload) == []
    assert payload["findings_equal"] is True
    # The committed point must demonstrate the design target (measured on
    # the maintainer's machine at generation time, not re-timed in CI).
    assert payload["overhead_ratio"] <= payload["target_max_overhead_ratio"]


def test_validate_payload_flags_problems(bench_tool):
    assert bench_tool.validate_payload({}) != []
    good = json.loads(open(_COMMITTED, encoding="utf-8").read())
    bad = dict(good, transports={"local": good["transports"]["local"]})
    assert any("socket" in problem
               for problem in bench_tool.validate_payload(bad))
