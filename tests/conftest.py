"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compilers.bugs import BugConfig
from repro.dtypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.model import Model


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast end-to-end checks (run with `make smoke` / `pytest -m smoke`)")


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def build_mlp_model(seed: int = 0, dtype=np.float32) -> Model:
    """A small Gemm/Relu/Softmax model used across tests."""
    gen = np.random.default_rng(seed)
    builder = GraphBuilder("mlp")
    x = builder.input([2, 8])
    w1 = builder.weight(gen.normal(0, 0.5, size=(8, 6)).astype(dtype))
    b1 = builder.weight(np.zeros(6, dtype=dtype))
    h = builder.op1("Gemm", [x, w1, b1])
    h = builder.op1("Relu", [h])
    w2 = builder.weight(gen.normal(0, 0.5, size=(6, 4)).astype(dtype))
    b2 = builder.weight(np.zeros(4, dtype=dtype))
    out = builder.op1("Gemm", [h, w2, b2])
    out = builder.op1("Softmax", [out], axis=1)
    builder.output(out)
    return builder.build()


def build_conv_model(seed: int = 0) -> Model:
    """A small convolutional model (conv/relu/pool/flatten)."""
    gen = np.random.default_rng(seed)
    builder = GraphBuilder("cnn")
    x = builder.input([1, 4, 8, 8])
    w = builder.weight(gen.normal(0, 0.4, size=(8, 4, 3, 3)).astype(np.float32))
    value = builder.op1("Conv2d", [x, w], stride=1, padding=1)
    value = builder.op1("Relu", [value])
    value = builder.op1("MaxPool2d", [value], kh=2, kw=2, stride=2, padding=0)
    value = builder.op1("Flatten", [value], axis=1)
    builder.output(value)
    return builder.build()


@pytest.fixture
def mlp_model() -> Model:
    return build_mlp_model()


@pytest.fixture
def conv_model() -> Model:
    return build_conv_model()


@pytest.fixture
def no_bugs() -> BugConfig:
    return BugConfig.none()


@pytest.fixture
def all_bugs_config() -> BugConfig:
    return BugConfig.all()
