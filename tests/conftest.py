"""Shared fixtures for the test suite.

Marker registration and the reference model builders live in
:mod:`repro.testing`, shared with ``benchmarks/conftest.py``; this file only
binds them to pytest fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compilers.bugs import BugConfig
from repro.graph.model import Model
from repro.testing import build_conv_model, build_mlp_model, register_markers


def pytest_configure(config):
    register_markers(config)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def mlp_model() -> Model:
    return build_mlp_model()


@pytest.fixture
def conv_model() -> Model:
    return build_conv_model()


@pytest.fixture
def no_bugs() -> BugConfig:
    return BugConfig.none()


@pytest.fixture
def all_bugs_config() -> BugConfig:
    return BugConfig.all()
