"""Engine tests for the generator axis, pool modes and time-budget resume.

The acceptance-critical scenarios: per-strategy serial-vs-parallel
equivalence, a generator-axis matrix campaign interrupted mid-cell whose
resume reproduces the uninterrupted result exactly, opt-in per-subset
operator pools, and mid-cell checkpoint resume for pure time-budget cells.
"""

import dataclasses
import json

import pytest

from repro.core.parallel import (
    MIN_RESUME_BUDGET,
    ParallelCampaign,
    _cell_tester,
    build_matrix,
    run_parallel_campaign,
    run_sharded_serial,
)
from repro.errors import ReproError
from repro.experiments.venn import campaign_cell_sets
from repro.testing import campaign_signature, tiny_campaign_config

GENERATORS = ["nnsmith", "graphfuzzer", "targeted"]


class _InterruptAfter(ParallelCampaign):
    """Campaign that dies (after checkpointing) at the Nth folded iteration."""

    def __init__(self, interrupt_after, **kwargs):
        super().__init__(**kwargs)
        self._folds_left = interrupt_after

    def _fold_iteration(self, states, cell_index, iteration, partial):
        super()._fold_iteration(states, cell_index, iteration, partial)
        self._folds_left -= 1
        if self._folds_left <= 0:
            raise KeyboardInterrupt("simulated mid-campaign kill")


class _FoldCounter(ParallelCampaign):
    """Campaign recording which iterations it actually executes."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.folds = {}

    def _fold_iteration(self, states, cell_index, iteration, partial):
        key = states[cell_index].task.cell.key
        self.folds.setdefault(key, []).append(iteration)
        super()._fold_iteration(states, cell_index, iteration, partial)


class TestGeneratorAxisMatrix:
    def test_build_matrix_crosses_generators(self):
        tasks = build_matrix(tiny_campaign_config(iterations=8), 2,
                             generators=GENERATORS)
        assert len(tasks) == len(GENERATORS) * 2
        keys = {task.cell.key for task in tasks}
        assert "shard0|<default>|O?|targeted" in keys
        assert "shard1|<default>|O?|nnsmith" in keys
        # cells carry their strategy in the shard config for the workers
        for task in tasks:
            assert task.config.strategy == task.cell.generator

    def test_no_generator_axis_keeps_pr2_cell_keys(self):
        tasks = build_matrix(tiny_campaign_config(iterations=4), 2)
        assert {task.cell.key for task in tasks} == \
            {"shard0|<default>|O?", "shard1|<default>|O?"}

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError, match="csmith"):
            build_matrix(tiny_campaign_config(), 1, generators=["csmith"])

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ValueError):
            build_matrix(tiny_campaign_config(), 1, generators=[])


@pytest.mark.campaign
class TestPerStrategyEquivalence:
    @pytest.mark.parametrize("strategy", ["graphfuzzer", "lemon", "targeted"])
    def test_parallel_equals_sharded_serial(self, strategy):
        config = tiny_campaign_config(iterations=6, seed=11,
                                      strategy=strategy)
        serial = run_sharded_serial(config, 2)
        parallel = run_parallel_campaign(config=config, n_workers=2)
        assert campaign_signature(parallel)[:7] == \
            campaign_signature(serial)[:7]

    def test_crash_oracle_through_both_paths(self):
        config = tiny_campaign_config(iterations=6, seed=5,
                                      strategy="targeted", oracle="crash")
        serial = run_sharded_serial(config, 2)
        parallel = run_parallel_campaign(config=config, n_workers=2)
        assert campaign_signature(parallel)[:7] == \
            campaign_signature(serial)[:7]
        assert all(report.status == "crash" for report in parallel.reports)
        assert parallel.reports  # targeted motifs do crash the trio


@pytest.mark.campaign
class TestGeneratorAxisCampaign:
    def test_per_generator_budgets_and_provenance(self):
        config = tiny_campaign_config(iterations=4, seed=9)
        result = run_parallel_campaign(config=config, n_workers=2, n_shards=2,
                                       generators=GENERATORS)
        assert result.iterations == 4 * len(GENERATORS)
        assert len(result.cells) == 2 * len(GENERATORS)
        by_generator = campaign_cell_sets(result, by="generator")
        assert set(by_generator) == set(GENERATORS)

    def test_interrupted_generator_matrix_resumes_exactly(self, tmp_path):
        config = tiny_campaign_config(iterations=4, seed=21)
        matrix = dict(generators=GENERATORS, n_shards=2)
        reference = run_parallel_campaign(config=config, n_workers=2, **matrix)

        path = str(tmp_path / "gen-matrix.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=5, config=config,
                                      n_workers=1, checkpoint_path=path,
                                      **matrix)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        payload = json.loads(open(path, encoding="utf-8").read())
        done_before = sum(
            end - start + 1
            for entry in payload["cells"].values()
            for start, end in entry["completed"])
        assert done_before == 5

        resumed = _FoldCounter(config=config, n_workers=2,
                               checkpoint_path=path, **matrix)
        result = resumed.run()
        executed = sum(len(iters) for iters in resumed.folds.values())
        assert executed == 4 * len(GENERATORS) - 5
        assert campaign_signature(result) == campaign_signature(reference)


class TestPoolModes:
    def test_union_mode_bakes_one_shared_pool(self):
        campaign = ParallelCampaign(
            config=tiny_campaign_config(iterations=4),
            n_workers=2, compiler_sets=[["graphrt"], ["turbo"]])
        tasks = campaign._build_tasks()
        pools = {tuple(sorted(spec.op_kind
                              for spec in task.config.generator.op_pool))
                 for task in tasks}
        assert len(pools) == 1
        assert all(not task.config.probe_operator_support for task in tasks)

    def test_per_subset_mode_probes_in_the_cell(self):
        # deepc's kernel table is a strict subset of graphrt's, so its cells
        # must generate from a larger pool than the union would allow.
        campaign = ParallelCampaign(
            config=tiny_campaign_config(iterations=4),
            n_workers=2, compiler_sets=[["graphrt"], ["deepc"]],
            pool_mode="per-subset")
        tasks = campaign._build_tasks()
        # probing is deferred to the workers ...
        assert all(task.config.probe_operator_support for task in tasks)
        # ... where each cell derives its own subset's pool
        pools = {}
        for task in tasks:
            _tester, config, _strategy, _coverage = _cell_tester(
                task, campaign.compiler_factory)
            pools[task.cell.compilers] = {spec.op_kind
                                          for spec in config.generator.op_pool}
        assert pools[("deepc",)] < pools[("graphrt",)]

    def test_pool_modes_fingerprint_separately(self):
        config = tiny_campaign_config(iterations=4)
        union = ParallelCampaign(config=config, n_workers=2,
                                 compiler_sets=[["turbo"]])
        subset = ParallelCampaign(config=config, n_workers=2,
                                  compiler_sets=[["turbo"]],
                                  pool_mode="per-subset")
        assert union._checkpoint_fingerprint(2) != \
            subset._checkpoint_fingerprint(2)

    def test_invalid_pool_mode_rejected(self):
        campaign = ParallelCampaign(config=tiny_campaign_config(),
                                    pool_mode="intersection")
        with pytest.raises(ValueError, match="pool_mode"):
            campaign._build_tasks()

    def test_baseline_only_matrix_skips_probing(self):
        # Mutation strategies ignore the operator pool; probing would be
        # pure cost, so union mode skips it for them.
        campaign = ParallelCampaign(
            config=tiny_campaign_config(strategy="graphfuzzer"),
            n_workers=2, compiler_sets=[["graphrt"], ["turbo"]],
            generators=["graphfuzzer", "lemon"])
        tasks = campaign._build_tasks()
        assert all(task.config.probe_operator_support for task in tasks)


@pytest.mark.campaign
class TestTimeBudgetResume:
    def _config(self):
        return dataclasses.replace(tiny_campaign_config(seed=3, n_nodes=4),
                                   max_iterations=None, time_budget=6.0)

    def test_interrupted_time_budget_cell_resumes_mid_stream(self, tmp_path):
        config = self._config()
        path = str(tmp_path / "tb.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=4, config=config,
                                      n_workers=1, checkpoint_path=path)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        cell = json.loads(open(path, encoding="utf-8").read())["cells"][
            "shard0|<default>|O?"]
        assert cell["completed"] == [[1, 4]]
        assert cell["time_used"] > 0
        assert not cell["done"]

        resumed = _FoldCounter(config=config, n_workers=1,
                               checkpoint_path=path)
        result = resumed.run()
        executed = resumed.folds["shard0|<default>|O?"]
        # the resumed cell continued after iteration 4, never re-ran 1-4
        assert min(executed) == 5
        assert result.iterations == 4 + len(executed)

        cell_after = json.loads(open(path, encoding="utf-8").read())["cells"][
            "shard0|<default>|O?"]
        assert cell_after["done"]
        assert cell_after["time_used"] >= cell["time_used"]

        # a third run finds the budget consumed and executes nothing
        third = _FoldCounter(config=config, n_workers=1,
                             checkpoint_path=path)
        final = third.run()
        assert third.folds == {}
        assert final.iterations == result.iterations

    def test_exhausted_budget_cell_is_done_on_load(self, tmp_path):
        config = self._config()
        path = str(tmp_path / "tb2.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=2, config=config,
                                      n_workers=1, checkpoint_path=path)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()
        payload = json.loads(open(path, encoding="utf-8").read())
        key = "shard0|<default>|O?"
        # forge a checkpoint whose budget is (almost) fully consumed
        payload["cells"][key]["time_used"] = \
            config.time_budget - MIN_RESUME_BUDGET / 2
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        resumed = _FoldCounter(config=config, n_workers=1,
                               checkpoint_path=path)
        result = resumed.run()
        assert resumed.folds == {}
        assert result.iterations == 2
