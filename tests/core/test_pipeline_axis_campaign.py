"""Pipeline-axis matrix campaigns: checkpoint v6, per-pipeline Venn slicing.

The acceptance scenario lives in
``TestPipelineAxisCampaign::test_ordering_bug_found_only_by_sampled_pipeline``:
one campaign races the canonical ``O0`` pipeline against deterministically
sampled pass orderings over identical shard seed streams, and the seeded
ordering-only bug (``graphrt-constfold-internal-biassoftmax`` — constant
folding crashes on the internal operator that BiasSoftmax fusion emits,
but the canonical order runs folding *first*) shows up exclusively in the
sampled-pipeline cell.  Plus: checkpoint v6 kill/resume for pipeline-axis
campaigns, loud rejection of v5 checkpoints, and the fingerprint keeping
differently-shaped pipeline matrices from cross-loading cells.
"""

import json

import pytest

from repro.core.fuzzer import CampaignResult, CellOutcome, FuzzerConfig
from repro.core.parallel import (
    CHECKPOINT_FORMAT_VERSION,
    ParallelCampaign,
    build_matrix,
    run_parallel_campaign,
)
from repro.errors import ReproError
from repro.experiments.venn import campaign_cell_sets
from repro.testing import campaign_signature, tiny_campaign_config

#: A sampled graphrt ordering that runs BiasSoftmaxFusion *before*
#: ConstantFolding — the order no canonical ``O<k>`` pipeline ever uses.
#: Self-contained token (seed baked in), so it is campaign-seed independent.
ORDERING_TOKEN = "rand:14682586710177421089:1"

#: Pinned campaign seed at which the nnsmith stream produces a model with
#: the Add->Softmax motif within the first few iterations (found by a
#: dev-time scan; the fusion pass needs Add feeding a single Softmax
#: consumer with matching shapes).
ORDERING_SEED = 117


def _study_config(iterations=8, seed=ORDERING_SEED):
    return tiny_campaign_config(iterations=iterations, seed=seed, n_nodes=8)


class TestBuildMatrixPipelineAxis:
    def test_pipeline_axis_crosses_with_shards(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8), 2,
                             pipelines=["O0", "O2"])
        assert len(tasks) == 4
        keys = {task.cell.key for task in tasks}
        assert "shard0|<default>|O?|pipe:O0" in keys
        assert "shard1|<default>|O?|pipe:O2" in keys
        # every cell's shard config carries its pipeline token to the worker
        assert {task.config.pipeline for task in tasks} == {"O0", "O2"}

    def test_sampler_expansion_is_a_pure_function_of_the_config(self):
        first = build_matrix(FuzzerConfig(max_iterations=4, seed=9), 1,
                             pipelines=["random:3@7"])
        again = build_matrix(FuzzerConfig(max_iterations=4, seed=9), 1,
                             pipelines=["random:3@7"])
        other = build_matrix(FuzzerConfig(max_iterations=4, seed=10), 1,
                             pipelines=["random:3@7"])
        assert [t.cell.pipeline for t in first] == \
            [t.cell.pipeline for t in again]
        assert [t.cell.pipeline for t in first] != \
            [t.cell.pipeline for t in other]
        assert all(t.cell.pipeline.startswith("rand:") for t in first)

    def test_pipeline_axis_shares_shard_seed_streams(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8, seed=3), 2,
                             pipelines=["O0", "O2", ORDERING_TOKEN])
        by_shard = {}
        for task in tasks:
            by_shard.setdefault(task.cell.shard, set()).add(
                (task.config.seed, task.config.max_iterations,
                 task.config.strategy))
        assert all(len(variants) == 1 for variants in by_shard.values())

    def test_unknown_pipeline_token_rejected(self):
        with pytest.raises(KeyError, match="nosuch"):
            build_matrix(FuzzerConfig(), 1, pipelines=["nosuch"])

    def test_empty_pipelines_rejected(self):
        with pytest.raises(ValueError):
            build_matrix(FuzzerConfig(), 1, pipelines=[])

    def test_duplicate_pipelines_deduped(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 1,
                             pipelines=["O2", "O2"])
        assert len(tasks) == 1

    def test_no_axis_keeps_pre_v6_cell_keys(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 2)
        assert [task.cell.key for task in tasks] == \
            ["shard0|<default>|O?", "shard1|<default>|O?"]

    def test_pipeline_axis_composes_with_other_axes(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 1,
                             oracles=["difftest", "crash"],
                             pipelines=["O0", "O2"])
        assert len(tasks) == 4
        keys = {task.cell.key for task in tasks}
        assert "shard0|<default>|O?|oracle:crash|pipe:O2" in keys
        for task in tasks:
            assert task.config.pipeline == task.cell.pipeline


@pytest.mark.campaign
class TestPipelineAxisCampaign:
    def test_ordering_bug_found_only_by_sampled_pipeline(self):
        """The acceptance scenario: equivalence-modulo-passes over shared
        streams shows the seeded ordering-only bug exclusively in the
        sampled-pipeline cell — no canonical pipeline can see it."""
        result = run_parallel_campaign(
            config=_study_config(), n_workers=1, n_shards=1,
            compiler_sets=[["graphrt"]],
            pipelines=["O0", "O2", ORDERING_TOKEN])
        assert result.iterations == 8 * 3
        sets = campaign_cell_sets(result, by="pipeline")
        assert set(sets) == {"O0", "O2", ORDERING_TOKEN}
        assert "graphrt-constfold-internal-biassoftmax" in \
            sets[ORDERING_TOKEN]
        assert "graphrt-constfold-internal-biassoftmax" not in sets["O0"]
        assert "graphrt-constfold-internal-biassoftmax" not in sets["O2"]

    def test_found_ordering_bug_bisects_to_two_passes(self):
        """Attribution: delta debugging shrinks the finding's ~dozen-pass
        sampled pipeline to exactly the two interacting passes."""
        from repro.core.fuzzer import generate_for_iteration
        from repro.core.parallel import shard_configs
        from repro.experiments.pass_bisect import bisect_finding

        # Recreate the failing cell's model stream (pure function of the
        # config) and bisect the first iteration that triggers the bug.
        shard = shard_configs(_study_config(), 1)[0]
        for iteration in range(8):
            generated = generate_for_iteration(shard, iteration)
            if generated is None:
                continue
            result = bisect_finding(generated.model, "graphrt",
                                    ORDERING_TOKEN)
            if result.reproduced:
                break
        else:
            pytest.fail("no iteration reproduced the ordering bug")
        assert len(result.minimal) <= 2
        assert result.minimal == (("graphrt", "BiasSoftmaxFusion"),
                                  ("graphrt", "ConstantFolding"))
        assert "graphrt-constfold-internal-biassoftmax" in \
            result.failure.bug_ids

    def test_pipeline_axis_equivalent_across_engines(self):
        config = _study_config(iterations=6)
        axis = dict(compiler_sets=[["graphrt"]], n_shards=2,
                    pipelines=["O0", ORDERING_TOKEN])
        solo = run_parallel_campaign(config=config, n_workers=1, **axis)
        pool = run_parallel_campaign(config=config, n_workers=2, **axis)
        assert campaign_signature(solo) == campaign_signature(pool)


class _InterruptAfter(ParallelCampaign):
    """Campaign that dies (after checkpointing) at the Nth folded iteration."""

    def __init__(self, interrupt_after, **kwargs):
        super().__init__(**kwargs)
        self._folds_left = interrupt_after

    def _fold_iteration(self, states, cell_index, iteration, partial):
        super()._fold_iteration(states, cell_index, iteration, partial)
        self._folds_left -= 1
        if self._folds_left <= 0:
            raise KeyboardInterrupt("simulated mid-campaign kill")


class _FoldCounter(ParallelCampaign):
    """Campaign that records how many iterations it actually executes."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.folds = {}

    def _fold_iteration(self, states, cell_index, iteration, partial):
        key = states[cell_index].task.cell.key
        self.folds[key] = self.folds.get(key, 0) + 1
        super()._fold_iteration(states, cell_index, iteration, partial)


@pytest.mark.campaign
class TestCheckpointV6:
    def test_killed_pipeline_axis_campaign_resumes_mid_cell(self, tmp_path):
        config = _study_config(iterations=6)
        axis = dict(compiler_sets=[["graphrt"]], n_shards=2,
                    pipelines=["O0", ORDERING_TOKEN])
        budget_per_cell = 3

        reference = run_parallel_campaign(config=config, n_workers=1, **axis)

        path = str(tmp_path / "pipeline.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=5, config=config,
                                      n_workers=1, checkpoint_path=path,
                                      **axis)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["format_version"] == CHECKPOINT_FORMAT_VERSION == 7
        completed_before = {
            key: sum(end - start + 1 for start, end in entry["completed"])
            for key, entry in payload["cells"].items()
        }
        assert sum(completed_before.values()) == 5
        assert any(0 < count < budget_per_cell
                   for count in completed_before.values())
        # per-pipeline cells keep their token in the checkpoint cell keys,
        # so differently-compiled cells can never collide
        assert all("|pipe:" in key for key in payload["cells"])
        assert any(key.endswith("|pipe:O0") for key in payload["cells"])

        resumed = _FoldCounter(config=config, n_workers=1,
                               checkpoint_path=path, **axis)
        result = resumed.run()
        assert sum(resumed.folds.values()) == \
            4 * budget_per_cell - 5  # only the missing iterations re-ran
        assert campaign_signature(result) == campaign_signature(reference)

    def test_v5_checkpoints_are_rejected_loudly(self, tmp_path):
        config = tiny_campaign_config(iterations=4, seed=3)
        path = tmp_path / "old.ckpt.json"
        path.write_text(json.dumps({"format_version": 5, "cells": {}}),
                        encoding="utf-8")
        with pytest.raises(ReproError, match="format_version 5"):
            run_parallel_campaign(config=config, n_workers=1,
                                  checkpoint_path=str(path))

    def test_fingerprint_rejects_differently_shaped_pipeline_matrix(
            self, tmp_path):
        config = _study_config(iterations=4)
        path = str(tmp_path / "axis.ckpt.json")
        run_parallel_campaign(config=config, n_workers=1, n_shards=2,
                              compiler_sets=[["graphrt"]],
                              pipelines=["O0", "O2"],
                              checkpoint_path=path)
        rerun = _FoldCounter(config=config, n_workers=1, n_shards=2,
                             compiler_sets=[["graphrt"]],
                             pipelines=["O0"], checkpoint_path=path)
        rerun.run()
        # nothing restored: the full (smaller) campaign re-executed
        assert sum(rerun.folds.values()) == 4

    def test_same_pipeline_axis_restores_fully(self, tmp_path):
        config = _study_config(iterations=4)
        path = str(tmp_path / "axis.ckpt.json")
        axis = dict(compiler_sets=[["graphrt"]], n_shards=2,
                    pipelines=["O0", "O2"])
        first = run_parallel_campaign(config=config, n_workers=1,
                                      checkpoint_path=path, **axis)
        again = _FoldCounter(config=config, n_workers=1,
                             checkpoint_path=path, **axis)
        result = again.run()
        assert again.folds == {}
        assert campaign_signature(result) == campaign_signature(first)


class TestPipelineVennHelpers:
    def test_group_by_pipeline(self):
        result = CampaignResult()
        for shard, pipeline, bugs in [
            (0, "O2", {"shared-x"}),
            (1, "O2", set()),
            (0, "rand:5:0", {"shared-x", "order-only"}),
        ]:
            cell = CellOutcome(shard=shard, pipeline=pipeline, iterations=3,
                               seeded_bugs_found=set(bugs))
            result.cells[cell.key()] = cell
        sets = campaign_cell_sets(result, by="pipeline")
        assert sets == {"O2": {"shared-x"},
                        "rand:5:0": {"shared-x", "order-only"}}

    def test_cells_without_pipeline_group_as_default(self):
        result = CampaignResult()
        cell = CellOutcome(shard=0, iterations=1,
                           seeded_bugs_found={"bug-a"})
        result.cells[cell.key()] = cell
        assert campaign_cell_sets(result, by="pipeline") == \
            {"<default>": {"bug-a"}}

    def test_outcome_key_roundtrips_pipeline(self):
        cell = CellOutcome(shard=2, compilers=("graphrt",), opt_level=2,
                           oracle="difftest", pipeline="rand:5:0")
        assert cell.key() == "shard2|graphrt|O2|oracle:difftest|pipe:rand:5:0"
        assert cell.copy().key() == cell.key()
