"""Tests for loss functions, value search, differential testing and the fuzzer."""

import numpy as np
import pytest

from repro.compilers import CompileOptions, DeepCCompiler, GraphRTCompiler, TurboCompiler
from repro.compilers.bugs import BugConfig
from repro.core import (
    DifferentialTester,
    Fuzzer,
    FuzzerConfig,
    GeneratorConfig,
    compare_outputs,
    generate_model,
    gradient_search,
    sampling_search,
    search_values,
)
from repro.core.losses import (
    VULNERABLE_OPERATORS,
    is_vulnerable,
    losses_for_node,
    magnitude_loss,
)
from repro.dtypes import DType
from repro.graph.builder import GraphBuilder
from repro.graph.node import Node
from repro.runtime import Interpreter

NO_BUGS = BugConfig.none()


def _log_model():
    builder = GraphBuilder("logm")
    x = builder.input([6])
    w = builder.weight(np.full(6, -5.0, dtype=np.float32))
    shifted = builder.op1("Add", [x, w])
    builder.op1("Log", [shifted])
    return builder.build()


class TestLosses:
    def test_vulnerable_operator_registry(self):
        for op in ("Log", "Sqrt", "Asin", "Div", "Pow"):
            assert is_vulnerable(op)
        assert not is_vulnerable("Relu")

    @pytest.mark.parametrize("op", sorted(VULNERABLE_OPERATORS))
    def test_loss_positive_iff_domain_violated(self, op):
        terms = VULNERABLE_OPERATORS[op]
        good = {
            "Asin": [np.array([0.5])], "Acos": [np.array([0.5])],
            "Log": [np.array([2.0])], "Log2": [np.array([2.0])],
            "Sqrt": [np.array([2.0])], "Reciprocal": [np.array([2.0])],
            "Div": [np.array([1.0]), np.array([2.0])],
            "Pow": [np.array([2.0]), np.array([3.0])],
            "Exp": [np.array([1.0])], "Softmax": [np.array([1.0])],
        }[op]
        bad = {
            "Asin": [np.array([3.0])], "Acos": [np.array([-3.0])],
            "Log": [np.array([-1.0])], "Log2": [np.array([-1.0])],
            "Sqrt": [np.array([-1.0])], "Reciprocal": [np.array([0.0])],
            "Div": [np.array([1.0]), np.array([0.0])],
            "Pow": [np.array([-2.0]), np.array([3.0])],
            "Exp": [np.array([100.0])], "Softmax": [np.array([200.0])],
        }[op]
        assert all(term.value(good) == 0 for term in terms)
        assert any(term.value(bad) > 0 for term in terms)

    def test_loss_gradients_point_into_domain(self):
        term = VULNERABLE_OPERATORS["Log"][0]
        grads = term.grads([np.array([-2.0, 3.0])])
        # Gradient descent subtracts the gradient, so a negative gradient on
        # the violating element pushes it upward (into x > 0).
        assert grads[0][0] < 0 and grads[0][1] == 0

    def test_magnitude_fallback(self):
        term = magnitude_loss()
        assert term.value([np.array([1e6])]) > 0
        assert term.value([np.array([1.0])]) == 0

    def test_losses_for_node_always_has_fallback(self):
        terms = losses_for_node(Node("Relu", "r", [], []))
        assert len(terms) == 1  # only the fallback
        terms = losses_for_node(Node("Pow", "p", [], []))
        assert len(terms) >= 3


class TestValueSearch:
    def test_gradient_search_fixes_log_domain(self):
        model = _log_model()
        result = gradient_search(model, np.random.default_rng(0), time_budget=0.5,
                                 max_iterations=200)
        assert result.success
        patched = result.apply_weights(model)
        run = Interpreter().run_detailed(patched, result.inputs)
        assert run.numerically_valid

    def test_sampling_search_fails_on_hard_model(self):
        # Inputs are drawn from [1, 9] and the weight shifts them by -5, so a
        # random draw succeeds only if every one of the 6 elements lands > 5.
        model = _log_model()
        result = sampling_search(model, np.random.default_rng(0), time_budget=0.02,
                                 max_trials=3)
        patched = result.apply_weights(model)
        run = Interpreter().run_detailed(patched, result.inputs)
        assert run.numerically_valid == result.success

    def test_search_values_dispatch(self):
        model = _log_model()
        for method in ("sampling", "gradient", "gradient_proxy"):
            result = search_values(model, method=method,
                                   rng=np.random.default_rng(1), time_budget=0.05)
            assert result.method.startswith(method.split("_")[0])
        with pytest.raises(ValueError):
            search_values(model, method="annealing")

    def test_valid_model_succeeds_immediately(self, mlp_model):
        result = gradient_search(mlp_model, np.random.default_rng(0), time_budget=0.2)
        assert result.success
        assert result.iterations == 1


class TestCompareOutputs:
    def test_identical_outputs_match(self):
        ref = {"y": np.array([1.0, 2.0])}
        assert compare_outputs(ref, {"y": np.array([1.0, 2.0])}) is None

    def test_small_fp_noise_tolerated(self):
        ref = {"y": np.array([1.0, 2.0])}
        assert compare_outputs(ref, {"y": np.array([1.0 + 1e-6, 2.0])}) is None

    def test_value_mismatch_detected(self):
        assert compare_outputs({"y": np.array([1.0])}, {"y": np.array([2.0])})

    def test_shape_mismatch_detected(self):
        assert "shape" in compare_outputs({"y": np.zeros((2,))}, {"y": np.zeros((2, 1))})

    def test_missing_output_detected(self):
        assert "missing" in compare_outputs({"y": np.zeros(2)}, {})

    def test_integer_outputs_exact(self):
        assert compare_outputs({"y": np.array([1, 2])}, {"y": np.array([1, 3])})


def _make_tester(bugs):
    return DifferentialTester([
        GraphRTCompiler(CompileOptions(bugs=bugs)),
        DeepCCompiler(CompileOptions(bugs=bugs)),
        TurboCompiler(CompileOptions(bugs=bugs)),
    ], bugs=bugs)


class TestDifferentialTester:
    def test_clean_model_reports_ok(self, conv_model, rng):
        tester = _make_tester(NO_BUGS)
        from repro.runtime import random_inputs

        case = tester.run_case(conv_model, random_inputs(conv_model, rng))
        assert case.numerically_valid
        assert not case.found_any_bug
        assert {v.compiler for v in case.verdicts} == {"graphrt", "deepc", "turbo"}

    def test_semantic_bug_detected_and_localized(self):
        builder = GraphBuilder("vecrem")
        x = builder.input([7])
        builder.op1("Sigmoid", [x])
        model = builder.build()
        bugs = BugConfig.only("deepc-lowlevel-vectorize-remainder")
        tester = _make_tester(bugs)
        case = tester.run_case(model, {model.inputs[0]:
                                       np.linspace(0.2, 0.9, 7).astype(np.float32)})
        deepc = next(v for v in case.verdicts if v.compiler == "deepc")
        assert deepc.status == "semantic"
        assert deepc.phase == "transformation"
        assert "deepc-lowlevel-vectorize-remainder" in deepc.triggered_bugs

    def test_crash_bug_detected(self):
        builder = GraphBuilder("sred")
        x = builder.input([3, 4])
        builder.op1("ReduceMax", [x], axes=None, keepdims=False)
        model = builder.build()
        tester = _make_tester(BugConfig.only("deepc-import-scalar-reduce"))
        case = tester.run_case(model)
        deepc = next(v for v in case.verdicts if v.compiler == "deepc")
        assert deepc.status == "crash" and deepc.phase == "conversion"

    def test_nan_results_never_flag_semantic_bugs(self):
        builder = GraphBuilder("nan")
        x = builder.input([4])
        builder.op1("Log", [x])
        model = builder.build()
        tester = _make_tester(BugConfig.all())
        case = tester.run_case(model, {model.inputs[0]:
                                       np.array([-1, 1, 2, 3], dtype=np.float32)})
        assert not case.numerically_valid
        assert all(v.status != "semantic" for v in case.verdicts)

    def test_exporter_bug_attributed(self):
        builder = GraphBuilder("clip32")
        x = builder.input([4], DType.int32)
        builder.op1("Clip", [x], min=0, max=2)
        model = builder.build()
        tester = _make_tester(BugConfig.only("exporter-clip-int32-opset"))
        case = tester.run_case(model)
        assert "exporter-clip-int32-opset" in case.exporter_bugs
        graphrt = next(v for v in case.verdicts if v.compiler == "graphrt")
        assert graphrt.status == "crash"


class TestFuzzer:
    def test_campaign_finds_seeded_bugs(self):
        bugs = BugConfig.all()
        fuzzer = Fuzzer([GraphRTCompiler(CompileOptions(bugs=bugs)),
                         DeepCCompiler(CompileOptions(bugs=bugs)),
                         TurboCompiler(CompileOptions(bugs=bugs))],
                        FuzzerConfig(generator=GeneratorConfig(n_nodes=10),
                                     max_iterations=30, seed=7, bugs=bugs))
        result = fuzzer.run()
        assert result.generated_models > 0
        assert result.numerically_valid_models > 0
        assert result.seeded_bugs_found
        assert all(report.triggered_bugs for report in result.reports)
        assert result.operator_instances

    def test_campaign_clean_compilers_find_nothing(self):
        fuzzer = Fuzzer([GraphRTCompiler(CompileOptions(bugs=NO_BUGS)),
                         DeepCCompiler(CompileOptions(bugs=NO_BUGS))],
                        FuzzerConfig(generator=GeneratorConfig(n_nodes=6),
                                     max_iterations=8, seed=3, bugs=NO_BUGS))
        result = fuzzer.run()
        assert not result.seeded_bugs_found
        assert not result.reports

    def test_reports_are_deduplicated(self):
        bugs = BugConfig.only("deepc-import-scalar-reduce")
        fuzzer = Fuzzer([DeepCCompiler(CompileOptions(bugs=bugs))],
                        FuzzerConfig(generator=GeneratorConfig(n_nodes=8),
                                     max_iterations=25, seed=5, bugs=bugs))
        result = fuzzer.run()
        messages = [r.message.splitlines()[0] for r in result.reports]
        assert len(messages) == len(set(messages))

    def test_time_budget_respected(self):
        bugs = BugConfig.none()
        fuzzer = Fuzzer([GraphRTCompiler(CompileOptions(bugs=bugs))],
                        FuzzerConfig(generator=GeneratorConfig(n_nodes=5),
                                     max_iterations=None, time_budget=1.0,
                                     bugs=bugs, seed=0))
        result = fuzzer.run()
        assert result.elapsed < 5.0
        assert result.iterations >= 1

    def test_operator_support_probing_filters_pool(self):
        bugs = BugConfig.none()
        fuzzer = Fuzzer([DeepCCompiler(CompileOptions(bugs=bugs))],
                        FuzzerConfig(generator=GeneratorConfig(n_nodes=5), bugs=bugs,
                                     max_iterations=1))
        kinds = {spec.op_kind for spec in fuzzer.config.generator.op_pool}
        assert "Erf" not in kinds and "Relu" in kinds
