"""Tests for the versioned fabric wire schema (`repro.core.fabric.protocol`)."""

import dataclasses
import json

import pytest

from repro.core.fabric.protocol import (
    ARC_COMPRESSION_THRESHOLD,
    PROTOCOL_VERSION,
    CheckpointAck,
    ChunkDone,
    Claim,
    CoverageDelta,
    Heartbeat,
    Hello,
    IterationResult,
    Lease,
    ProtocolError,
    Shutdown,
    StatusReply,
    StatusRequest,
    Welcome,
    WorkerError,
    config_from_dict,
    config_to_dict,
    decode,
    encode,
    task_from_dict,
    task_to_dict,
)
from repro.core.parallel import CellTask, MatrixCell
from repro.testing import tiny_campaign_config

#: One non-default instance of every message kind in the schema.
ALL_MESSAGES = (
    Hello(worker="w-1", pid=4242),
    Welcome(factory="repro.core.parallel.default_compiler_factory"),
    Lease(chunk_id=7, cell_index=2, start=3, stop=9, time_budget=None,
          exclude=("w-dead",), task=None),
    Lease(chunk_id=8, cell_index=0, start=1, stop=None, time_budget=1.5),
    Claim(worker="w-1", chunk_id=7, cell_index=2),
    IterationResult(worker="w-1", chunk_id=7, cell_index=2, iteration=5,
                    duration=0.125, payload={"iterations": 1}),
    CoverageDelta(worker="w-1", cell_index=2, iteration=5,
                  arcs=("a->b", "b->c")),
    ChunkDone(worker="w-1", chunk_id=7, cell_index=2),
    WorkerError(worker="w-1", chunk_id=7, cell_index=2, message="boom"),
    Heartbeat(worker="w-1", sent_at=12.5),
    CheckpointAck(worker="w-1", folded=10, persisted=True),
    Shutdown(reason="campaign complete"),
    StatusRequest(),
    StatusReply(snapshot={"iterations": 3}),
)


class TestFrameRoundTrips:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_every_kind_round_trips(self, message):
        assert decode(encode(message)) == message

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_frames_survive_json(self, message):
        # The actual wire path: encode → json line → decode.
        frame = json.loads(json.dumps(encode(message)))
        assert decode(frame) == message

    def test_encode_tags_kind_and_version(self):
        frame = encode(Heartbeat(worker="w", sent_at=1.0))
        assert frame["kind"] == "heartbeat"
        assert frame["v"] == PROTOCOL_VERSION

    def test_json_lists_become_tuples(self):
        # JSON has no tuples; exclude/arcs come back as lists and must be
        # re-frozen so Lease/CoverageDelta stay hashable value objects.
        lease = decode(json.loads(json.dumps(
            encode(Lease(chunk_id=1, cell_index=0, start=1, stop=2,
                         exclude=("a", "b"))))))
        assert lease.exclude == ("a", "b")
        delta = decode(json.loads(json.dumps(
            encode(CoverageDelta(worker="w", cell_index=0, iteration=1,
                                 arcs=("x->y",))))))
        assert delta.arcs == ("x->y",)


class TestCoverageDeltaCompression:
    def _big_delta(self, count=300):
        # Realistic dotted-path arcs: long strings with heavy shared
        # structure, comfortably above the compression threshold.
        return CoverageDelta(
            worker="w-1", cell_index=3, iteration=9,
            arcs=tuple(f"repro.compilers.graphrt.passes:{i}->{i + 1}"
                       for i in range(count)))

    def test_small_deltas_ship_plain(self):
        frame = encode(CoverageDelta(worker="w", cell_index=0, iteration=1,
                                     arcs=("x->y",)))
        assert "packed" not in frame
        assert list(frame["arcs"]) == ["x->y"]

    def test_large_deltas_ship_compressed(self):
        delta = self._big_delta()
        assert (len(json.dumps(list(delta.arcs)).encode())
                > ARC_COMPRESSION_THRESHOLD)
        frame = encode(delta)
        assert frame["arcs"] == []
        assert frame["codec"] == "zlib+b64"
        assert len(json.dumps(frame)) < len(json.dumps(list(delta.arcs)))

    def test_compressed_delta_round_trips_through_json(self):
        delta = self._big_delta()
        rebuilt = decode(json.loads(json.dumps(encode(delta))))
        assert rebuilt == delta
        assert isinstance(rebuilt.arcs, tuple)

    def test_unknown_codec_rejected(self):
        frame = encode(self._big_delta())
        frame["codec"] = "lz4"
        with pytest.raises(ProtocolError, match="unknown arc codec"):
            decode(frame)

    def test_corrupt_packed_payload_rejected(self):
        frame = encode(self._big_delta())
        frame["packed"] = "definitely-not-base64-zlib!!!"
        with pytest.raises(ProtocolError, match="corrupt packed"):
            decode(frame)


class TestFrameRejection:
    def test_version_mismatch_rejected(self):
        frame = encode(Hello(worker="w", pid=1))
        frame["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol version"):
            decode(frame)

    def test_missing_version_rejected(self):
        frame = encode(Hello(worker="w", pid=1))
        del frame["v"]
        with pytest.raises(ProtocolError, match="protocol version"):
            decode(frame)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fabric message"):
            decode({"kind": "teleport", "v": PROTOCOL_VERSION})

    def test_non_dict_frame_rejected(self):
        with pytest.raises(ProtocolError, match="must be a dict"):
            decode(["hello"])

    def test_encode_rejects_non_message(self):
        with pytest.raises(ProtocolError, match="not a fabric message"):
            encode({"kind": "hello"})

    def test_unknown_fields_dropped(self):
        # Additive same-version peers interoperate: extra fields are noise,
        # not an error.
        frame = encode(Claim(worker="w", chunk_id=3, cell_index=1))
        frame["shiny_new_field"] = "ignored"
        assert decode(frame) == Claim(worker="w", chunk_id=3, cell_index=1)


class TestCampaignObjectRoundTrips:
    def test_config_round_trips(self):
        config = tiny_campaign_config(iterations=6, seed=11, n_nodes=4)
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config))))
        # BugConfig compares by identity; normalize it before whole-config
        # equality and check the enabled set separately.
        assert rebuilt.bugs.enabled_ids() == config.bugs.enabled_ids()
        assert (dataclasses.replace(rebuilt, bugs=config.bugs)
                == config)

    def test_config_round_trip_preserves_op_pool(self):
        config = tiny_campaign_config()
        rebuilt = config_from_dict(config_to_dict(config))
        assert ({spec.op_kind for spec in rebuilt.generator.op_pool}
                == {spec.op_kind for spec in config.generator.op_pool})

    def test_config_round_trip_preserves_draw_order(self):
        # The generator draws ops and dtypes by iteration order; the wire
        # must not reorder either, or a remote worker would generate
        # different models for the same (config, iteration) seed.
        config = tiny_campaign_config()
        rebuilt = config_from_dict(json.loads(json.dumps(
            config_to_dict(config))))
        assert ([spec.op_kind for spec in rebuilt.generator.op_pool]
                == [spec.op_kind for spec in config.generator.op_pool])
        assert (list(rebuilt.generator.dtype_weights)
                == list(config.generator.dtype_weights))

    def test_unknown_op_kind_rejected(self):
        payload = config_to_dict(tiny_campaign_config())
        payload["generator"]["op_pool"].append("QuantumFourierTransform")
        with pytest.raises(ProtocolError, match="operator kinds"):
            config_from_dict(payload)

    def test_task_round_trips(self):
        task = CellTask(
            cell=MatrixCell(shard=1, compilers=("npbackend", "torchlike"),
                            opt_level=2, generator="nnsmith",
                            oracle="difftest", pipeline="O2"),
            config=tiny_campaign_config(seed=3),
            trace_coverage=True)
        rebuilt = task_from_dict(json.loads(json.dumps(task_to_dict(task))))
        assert rebuilt.cell == task.cell
        assert rebuilt.config.bugs.enabled_ids() == task.config.bugs.enabled_ids()
        assert (dataclasses.replace(rebuilt.config, bugs=task.config.bugs)
                == task.config)
        assert rebuilt.trace_coverage is True
