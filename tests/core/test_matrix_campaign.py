"""Tests for the matrix campaign engine (shard × compiler-set × opt-level).

The acceptance-critical scenario lives in
``TestInterruptedResume.test_killed_mid_cell_resumes_exactly``: a 2×2 matrix
campaign (two compiler subsets × two opt levels) is interrupted mid-cell,
resumed from its streamed checkpoint, completes exactly the remaining
iterations of every cell, and its merged result equals an uninterrupted run
with the same seeds.
"""

import json

import pytest

from repro.compilers.bugs import BugConfig
from repro.core.fuzzer import CampaignResult, FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.core.parallel import (
    MatrixCell,
    ParallelCampaign,
    build_matrix,
    deterministic_config,
    run_parallel_campaign,
)
from repro.errors import ReproError
from repro.experiments.venn import campaign_cell_sets, campaign_venn

SUBSETS = [["graphrt", "deepc"], ["turbo"]]
OPT_LEVELS = [0, 2]


def _config(iterations, seed=21, n_nodes=5):
    return deterministic_config(FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=iterations,
        bugs=BugConfig.all(),
        seed=seed,
    ), max_steps=8)


def _signature(result):
    """Order-independent content of a merged result, incl. cell provenance."""
    return (result.iterations,
            result.generated_models,
            result.generation_failures,
            result.numerically_valid_models,
            frozenset(result.seeded_bugs_found),
            frozenset(result.operator_instances),
            frozenset(report.dedup_key() for report in result.reports),
            frozenset(
                (key, cell.iterations, frozenset(cell.seeded_bugs_found),
                 frozenset(cell.report_keys))
                for key, cell in result.cells.items()))


class TestBuildMatrix:
    def test_flat_matrix_is_the_shard_list(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=10), 4)
        assert len(tasks) == 4
        assert [task.cell for task in tasks] == \
            [MatrixCell(shard=i) for i in range(4)]
        assert [task.config.max_iterations for task in tasks] == [3, 3, 2, 2]

    def test_matrix_crosses_subsets_and_levels(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8), 2,
                             compiler_sets=SUBSETS, opt_levels=OPT_LEVELS)
        assert len(tasks) == 2 * 2 * 2
        keys = {task.cell.key for task in tasks}
        assert "shard0|deepc+graphrt|O0" in keys
        assert "shard1|turbo|O2" in keys

    def test_every_combo_shares_shard_seed_streams(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8, seed=3), 2,
                             compiler_sets=SUBSETS, opt_levels=OPT_LEVELS)
        by_shard = {}
        for task in tasks:
            by_shard.setdefault(task.cell.shard, set()).add(
                (task.config.seed, task.config.max_iterations))
        # every combination runs the identical shard config
        assert all(len(variants) == 1 for variants in by_shard.values())

    def test_unknown_compiler_rejected(self):
        with pytest.raises(KeyError, match="nosuch"):
            build_matrix(FuzzerConfig(), 1, compiler_sets=[["nosuch"]])

    def test_duplicate_combinations_are_deduped(self):
        # same subset under different orderings + a repeated level would
        # otherwise produce colliding cell keys in checkpoints/provenance
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 2,
                             compiler_sets=[["graphrt", "deepc"],
                                            ["deepc", "graphrt"]],
                             opt_levels=[2, 2])
        keys = [task.cell.key for task in tasks]
        assert len(keys) == len(set(keys)) == 2

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            build_matrix(FuzzerConfig(), 1, compiler_sets=[[]])


@pytest.mark.campaign
class TestMatrixCampaign:
    def test_per_cell_budgets_and_provenance(self):
        result = run_parallel_campaign(
            config=_config(4), n_workers=2, n_shards=2,
            compiler_sets=SUBSETS, opt_levels=OPT_LEVELS)
        # 4 combos x full budget each
        assert result.iterations == 4 * 4
        assert len(result.cells) == 8
        assert all(cell.iterations == 2 for cell in result.cells.values())
        # O0 cells cannot trigger transformation-phase optimizer bugs
        by_opt = campaign_cell_sets(result, by="opt_level")
        assert set(by_opt) == {"O0", "O2"}
        from repro.compilers.bugs import bug_spec
        o0_only = {bug for bug in by_opt["O0"]
                   if bug_spec(bug).phase == "transformation"}
        assert not o0_only
        # the venn decomposition covers every found bug exactly once
        regions = campaign_venn(result, by="opt_level")
        assert sum(regions.values()) == len(by_opt["O0"] | by_opt["O2"])

    def test_full_subset_matrix_equals_flat_campaign(self):
        """A 1×1 matrix naming all three compilers reproduces the flat
        factory campaign exactly (same probe pool, same streams)."""
        config = _config(6, seed=9)
        flat = run_parallel_campaign(config=config, n_workers=2)
        matrix = run_parallel_campaign(
            config=config, n_workers=2, n_shards=2,
            compiler_sets=[["graphrt", "deepc", "turbo"]], opt_levels=[2])
        assert _signature(flat)[:7] == _signature(matrix)[:7]

    def test_adaptive_chunking_preserves_results(self):
        config = _config(6, seed=13)
        plain = run_parallel_campaign(
            config=config, n_workers=2, n_shards=2,
            compiler_sets=SUBSETS, opt_levels=[2])
        adaptive = run_parallel_campaign(
            config=config, n_workers=2, n_shards=2,
            compiler_sets=SUBSETS, opt_levels=[2],
            adaptive=True, chunk_iterations=1)
        assert _signature(plain) == _signature(adaptive)


class _InterruptAfter(ParallelCampaign):
    """Campaign that dies (after checkpointing) at the Nth folded iteration."""

    def __init__(self, interrupt_after, **kwargs):
        super().__init__(**kwargs)
        self._folds_left = interrupt_after

    def _fold_iteration(self, states, cell_index, iteration, partial):
        super()._fold_iteration(states, cell_index, iteration, partial)
        self._folds_left -= 1
        if self._folds_left <= 0:
            raise KeyboardInterrupt("simulated mid-campaign kill")


class _FoldCounter(ParallelCampaign):
    """Campaign that records how many iterations it actually executes."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.folds = {}

    def _fold_iteration(self, states, cell_index, iteration, partial):
        key = states[cell_index].task.cell.key
        self.folds[key] = self.folds.get(key, 0) + 1
        super()._fold_iteration(states, cell_index, iteration, partial)


@pytest.mark.campaign
class TestInterruptedResume:
    def test_killed_mid_cell_resumes_exactly(self, tmp_path):
        """The acceptance scenario: 2×2 matrix, killed mid-cell, resumed."""
        matrix = dict(compiler_sets=SUBSETS, opt_levels=OPT_LEVELS, n_shards=2)
        config = _config(6, seed=21)   # 3 iterations per cell, 8 cells
        budget_per_cell = 3

        reference = run_parallel_campaign(config=config, n_workers=2, **matrix)

        path = str(tmp_path / "matrix.ckpt.json")
        interrupted = _InterruptAfter(
            interrupt_after=5, config=config, n_workers=1,
            checkpoint_path=path, **matrix)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        completed_before = {
            key: sum(end - start + 1 for start, end in entry["completed"])
            for key, entry in payload["cells"].items()
        }
        assert sum(completed_before.values()) == 5
        # ... and the interruption really was mid-cell, not on a boundary
        assert any(0 < count < budget_per_cell
                   for count in completed_before.values())

        resumed = _FoldCounter(config=config, n_workers=2,
                               checkpoint_path=path, **matrix)
        result = resumed.run()

        # exactly the remaining iterations were executed, cell by cell
        expected_folds = {}
        for task in resumed._build_tasks():
            remaining = budget_per_cell - completed_before.get(task.cell.key, 0)
            if remaining:
                expected_folds[task.cell.key] = remaining
        assert resumed.folds == expected_folds

        # per-cell iteration counts are whole again
        assert {key: cell.iterations for key, cell in result.cells.items()} \
            == {task.cell.key: budget_per_cell
                for task in resumed._build_tasks()}

        # and the merged result equals the uninterrupted run
        assert _signature(result) == _signature(reference)

    def test_fully_checkpointed_campaign_runs_nothing(self, tmp_path):
        path = str(tmp_path / "matrix.ckpt.json")
        config = _config(4, seed=2)
        matrix = dict(compiler_sets=[["turbo"]], opt_levels=[2], n_shards=2)
        first = run_parallel_campaign(config=config, n_workers=2,
                                      checkpoint_path=path, **matrix)
        again = _FoldCounter(config=config, n_workers=2,
                             checkpoint_path=path, **matrix)
        result = again.run()
        assert again.folds == {}
        assert _signature(result) == _signature(first)


class TestInProcessSingleWorker:
    def test_workers_one_never_spawns_processes(self, tmp_path, monkeypatch):
        import repro.core.parallel as parallel_module

        def _no_processes(*args, **kwargs):
            raise AssertionError("--workers 1 must not use multiprocessing")

        monkeypatch.setattr(parallel_module.multiprocessing, "get_context",
                            _no_processes)
        path = str(tmp_path / "solo.ckpt.json")
        result = run_parallel_campaign(config=_config(3, seed=4), n_workers=1,
                                       checkpoint_path=path)
        assert result.iterations == 3
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert all(entry["done"] for entry in payload["cells"].values())

    def test_workers_one_resumes_from_own_checkpoint(self, tmp_path):
        config = _config(4, seed=6)
        path = str(tmp_path / "solo.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=2, config=config,
                                      n_workers=1, checkpoint_path=path)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()
        resumed = _FoldCounter(config=config, n_workers=1,
                               checkpoint_path=path)
        result = resumed.run()
        assert sum(resumed.folds.values()) == 2
        assert result.iterations == 4


class TestCampaignVennHelpers:
    def _synthetic(self):
        from repro.core.fuzzer import CellOutcome

        result = CampaignResult()
        for shard, subset, opt, bugs in [
            (0, ("graphrt",), 2, {"graphrt-a", "shared-x"}),
            (1, ("graphrt",), 2, {"graphrt-b"}),
            (0, ("deepc",), 2, {"deepc-a", "shared-x"}),
            (0, ("deepc",), 0, set()),
        ]:
            cell = CellOutcome(shard=shard, compilers=subset, opt_level=opt,
                               iterations=5, seeded_bugs_found=set(bugs))
            result.cells[cell.key()] = cell
        return result

    def test_group_by_compiler_set(self):
        sets = campaign_cell_sets(self._synthetic(), by="compiler_set")
        assert sets == {"graphrt": {"graphrt-a", "graphrt-b", "shared-x"},
                        "deepc": {"deepc-a", "shared-x"}}

    def test_group_by_opt_level_and_regions(self):
        result = self._synthetic()
        sets = campaign_cell_sets(result, by="opt_level")
        assert set(sets) == {"O0", "O2"}
        regions = campaign_venn(result, by="compiler_set")
        assert regions[frozenset({"graphrt", "deepc"})] == 1  # shared-x

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            campaign_cell_sets(CampaignResult(), by="banana")
