"""Tests for the ``shape`` oracle (shape-infer vs executed output shapes)."""

import numpy as np
import pytest

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.core.oracle import ShapeOnlyOracle, build_oracle, registered_oracles
from repro.core.parallel import run_parallel_campaign
from repro.errors import CompilerError
from repro.testing import campaign_signature, tiny_campaign_config


class _ShapeLyingCompiler:
    """Fake system whose outputs come back with a mangled shape."""

    name = "shapeliar"

    def compile_model(self, model):
        outer = self

        class _Compiled:
            triggered_bugs = []

            def run(self, inputs):
                del inputs
                return {name: np.zeros(1, dtype=np.float32)
                        for name in outer._outputs}

        self._outputs = list(model.outputs)
        return _Compiled()

    def supported_ops(self, candidate_ops):
        return list(candidate_ops)


class _CrashingCompiler:
    name = "boom"

    def compile_model(self, model):
        raise CompilerError("kaboom in a pass")

    def supported_ops(self, candidate_ops):
        return list(candidate_ops)


class TestShapeOracle:
    def test_registered(self):
        assert "shape" in registered_oracles()
        oracle = build_oracle("shape", [], bugs=BugConfig.none())
        assert isinstance(oracle, ShapeOnlyOracle)

    def test_correct_compiler_passes(self, mlp_model):
        oracle = ShapeOnlyOracle(
            [GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))],
            bugs=BugConfig.none())
        case = oracle.run_case(mlp_model)
        assert [v.status for v in case.verdicts] == ["ok"]

    def test_shape_mismatch_is_semantic(self, mlp_model):
        oracle = ShapeOnlyOracle([_ShapeLyingCompiler()],
                                 bugs=BugConfig.none())
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "semantic"
        assert "shape mismatch" in verdict.message

    def test_crash_is_reported_like_difftest(self, mlp_model):
        oracle = ShapeOnlyOracle([_CrashingCompiler()],
                                 bugs=BugConfig.none())
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "crash"
        assert verdict.phase == "transformation"

    def test_ignores_values_entirely(self, mlp_model):
        """A compiler returning correct shapes with garbage values is 'ok' —
        the cheap smoke oracle trades value bugs for speed by design."""

        class _WrongValues(_ShapeLyingCompiler):
            name = "wrongvalues"

            def compile_model(self, model):
                shapes = {name: tuple(model.type_of(name).shape)
                          for name in model.outputs}

                class _Compiled:
                    triggered_bugs = []

                    def run(self, inputs):
                        del inputs
                        return {name: np.full(shape, 123.0, dtype=np.float32)
                                for name, shape in shapes.items()}

                return _Compiled()

        oracle = ShapeOnlyOracle([_WrongValues()], bugs=BugConfig.none())
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "ok"


@pytest.mark.campaign
class TestShapeOracleInCampaigns:
    def test_campaign_runs_with_shape_oracle(self):
        config = tiny_campaign_config(iterations=3, oracle="shape")
        result = run_parallel_campaign(config=config, n_workers=1)
        assert result.iterations == 3
        assert result.generated_models > 0

    def test_shape_oracle_equivalent_across_engines(self):
        config = tiny_campaign_config(iterations=4, seed=7, oracle="shape")
        solo = run_parallel_campaign(config=config, n_workers=1, n_shards=2)
        pool = run_parallel_campaign(config=config, n_workers=2, n_shards=2)
        assert campaign_signature(solo) == campaign_signature(pool)
