"""Tests for operator specifications, the generator, binning and concretization."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ALL_SPECS,
    DEFAULT_OP_POOL,
    GeneratorConfig,
    GraphGenerator,
    SPEC_BY_KIND,
    generate_model,
    specs_for_ops,
)
from repro.core.abstract import AbsTensor, broadcast_dims
from repro.core.binning import apply_attribute_binning, binning_constraints_for, sample_from_bin
from repro.core.concretize import concretize
from repro.core.op_spec import MAX_RANK, SpecContext
from repro.dtypes import DType
from repro.graph.validate import validation_errors
from repro.ops.shape_infer import infer_output_types
from repro.runtime import Interpreter, random_inputs
from repro.solver import Solver


class TestAbstractTensor:
    def test_concretize(self):
        solver = Solver(seed=0)
        dims = [solver.int_var("a", 1, 8), solver.int_var("b", 1, 8)]
        tensor = AbsTensor(DType.float32, dims)
        ttype = tensor.concretize({"a": 3, "b": 5})
        assert ttype.shape == (3, 5) and ttype.dtype is DType.float32

    def test_numel_and_positive_constraints(self):
        tensor = AbsTensor(DType.float32, [2, 3])
        assert tensor.numel().evaluate({}) == 6
        assert all(c.satisfied({}) for c in tensor.positive_constraints())

    def test_same_shape_requires_equal_rank(self):
        a = AbsTensor(DType.float32, [2, 3])
        b = AbsTensor(DType.float32, [2])
        with pytest.raises(ValueError):
            a.same_shape_as(b)

    def test_broadcast_dims(self):
        a = AbsTensor(DType.float32, [2, 1])
        b = AbsTensor(DType.float32, [3])
        dims, constraints = broadcast_dims(a, b)
        assert len(dims) == 2
        assert len(constraints) == 1  # only the aligned trailing dim pair


class TestSpecificationLibrary:
    def test_library_size(self):
        assert len(ALL_SPECS) >= 55

    @pytest.mark.parametrize("spec_cls", ALL_SPECS,
                             ids=[cls.__name__ for cls in ALL_SPECS])
    def test_dtype_combos_well_formed(self, spec_cls):
        combos = spec_cls.dtype_combos()
        assert combos
        for inputs, outputs in combos:
            assert len(outputs) >= 1
            assert all(isinstance(dtype, DType) for dtype in inputs + outputs)

    @pytest.mark.parametrize("spec_cls", ALL_SPECS,
                             ids=[cls.__name__ for cls in ALL_SPECS])
    def test_spec_agrees_with_concrete_shape_inference(self, spec_cls):
        """Insert each operator via its spec and cross-check the concrete types.

        This is the repo's equivalent of "generated graphs always type check":
        the symbolic type_transfer must agree with the concrete shape
        inference used by the validator and the compilers.
        """
        rng = random.Random(0)
        produced = 0
        for attempt in range(40):
            solver = Solver(seed=attempt)
            ctx = SpecContext(solver, rng, max_dim=16)
            arity = rng.choice(spec_cls.arity_options())
            rank_options = spec_cls.input_rank_options()
            if len(rank_options) < arity:
                rank_options = rank_options + [rank_options[-1]] * (arity - len(rank_options))
            ranks = [rng.choice(options) for options in rank_options[:arity]]
            combos = [c for c in spec_cls.dtype_combos() if len(c[0]) == arity]
            if not combos:
                combos = spec_cls.dtype_combos()
            dtypes = rng.choice(combos)[0][:arity]
            inputs = [ctx.fresh_tensor(f"in{i}", rank, dtype)
                      for i, (rank, dtype) in enumerate(zip(ranks, dtypes))]
            if not spec_cls.accepts_ranks([t.rank for t in inputs]) or \
                    not spec_cls.accepts_dtypes([t.dtype for t in inputs]):
                continue
            spec = spec_cls.instantiate(ctx, inputs)
            if spec is None:
                continue
            constraints = list(spec.requires(inputs))
            outputs = spec.type_transfer(inputs)
            for out in outputs:
                constraints.extend(out.positive_constraints())
            if not solver.try_add_constraints(constraints):
                continue
            assignment = solver.model()
            node = spec.to_node([f"v{i}" for i in range(arity)],
                                [f"o{i}" for i in range(len(outputs))], assignment)
            concrete_inputs = [t.concretize(assignment) for t in inputs]
            inferred = infer_output_types(node, concrete_inputs)
            symbolic = [out.concretize(assignment) for out in outputs]
            assert [t.shape for t in inferred] == [t.shape for t in symbolic], spec_cls
            assert [t.dtype for t in inferred] == [t.dtype for t in symbolic], spec_cls
            produced += 1
            if produced >= 3:
                break
        assert produced > 0, f"could not exercise {spec_cls.__name__}"

    def test_specs_for_ops_filter(self):
        specs = specs_for_ops(["Relu", "Conv2d", "NotAnOp"])
        assert {cls.op_kind for cls in specs} == {"Relu", "Conv2d"}

    def test_spec_by_kind_consistency(self):
        for kind, cls in SPEC_BY_KIND.items():
            assert cls.op_kind == kind


class TestBinning:
    def test_sample_from_bin_ranges(self):
        rng = random.Random(0)
        for index in range(1, 7):
            low, high = sample_from_bin(index, 7, rng)
            assert 2 ** (index - 1) <= low <= high < 2 ** index + 1
        low, high = sample_from_bin(7, 7, rng)
        assert low == 64 and high is None

    def test_binning_constraints_reference_variable(self):
        rng = random.Random(0)
        constraints = binning_constraints_for("attr_x", rng, 7)
        assert constraints
        assert all("attr_x" in c.variables() for c in constraints)

    def test_binning_diversifies_attributes(self):
        """Binning must lift attribute values off the all-ones boundary."""
        def attribute_values(use_binning, seed):
            generated = generate_model(GeneratorConfig(
                n_nodes=10, seed=seed, use_binning=use_binning))
            values = []
            for node in generated.model.nodes:
                for key, value in node.attrs.items():
                    if isinstance(value, int) and key not in ("axis",):
                        values.append(value)
                shape_like = [v for v in generated.model.value_types.values()]
            values.extend(d for t in shape_like for d in t.shape)
            return values

        binned = []
        plain = []
        for seed in range(6):
            binned.extend(attribute_values(True, seed))
            plain.extend(attribute_values(False, seed))
        assert np.mean(binned) > np.mean(plain)

    def test_binning_keeps_system_satisfiable(self):
        generator = GraphGenerator(GeneratorConfig(n_nodes=8, seed=3))
        graph = generator.generate_symbolic()
        apply_attribute_binning(graph, generator.rng, k=7)
        model = graph.solver.model()
        for constraint in graph.solver.constraints:
            assert constraint.satisfied(model)


class TestGeneratorValidity:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_models_are_valid_and_runnable(self, seed):
        """The paper's central claim: every generated model type checks."""
        generated = generate_model(GeneratorConfig(n_nodes=10, seed=seed))
        assert validation_errors(generated.model) == []
        inputs = random_inputs(generated.model, np.random.default_rng(seed))
        Interpreter().run(generated.model, inputs)

    @pytest.mark.parametrize("n_nodes", [1, 3, 20])
    def test_respects_node_budget(self, n_nodes):
        generated = generate_model(GeneratorConfig(n_nodes=n_nodes, seed=1))
        assert 1 <= generated.n_nodes <= n_nodes

    def test_models_are_connected(self):
        generated = generate_model(GeneratorConfig(n_nodes=10, seed=5))
        assert generated.model.is_connected()

    def test_generator_is_deterministic_per_seed(self):
        first = generate_model(GeneratorConfig(n_nodes=8, seed=42))
        second = generate_model(GeneratorConfig(n_nodes=8, seed=42))
        assert [n.op for n in first.model.nodes] == [n.op for n in second.model.nodes]
        assert first.assignment == second.assignment

    def test_different_seeds_differ(self):
        ops_a = [n.op for n in generate_model(GeneratorConfig(n_nodes=10, seed=1)).model.nodes]
        ops_b = [n.op for n in generate_model(GeneratorConfig(n_nodes=10, seed=2)).model.nodes]
        assert ops_a != ops_b

    def test_backward_insertion_produces_multi_input_models(self):
        """Backward insertion lets placeholders multiply: some models should
        end up with several runtime inputs (multi-input models, §3.2)."""
        input_counts = [len(generate_model(GeneratorConfig(n_nodes=12, seed=s)).input_names)
                        for s in range(8)]
        assert max(input_counts) >= 2

    def test_weight_probability_zero_keeps_all_inputs(self):
        generated = generate_model(GeneratorConfig(n_nodes=6, seed=3,
                                                   weight_probability=0.0))
        assert not generated.weight_names

    def test_restricted_op_pool(self):
        pool = specs_for_ops(["Relu", "Add", "Sigmoid"])
        generated = generate_model(GeneratorConfig(n_nodes=6, seed=0, op_pool=pool))
        assert {node.op for node in generated.model.nodes} <= {"Relu", "Add", "Sigmoid"}

    def test_op_instances_recorded(self):
        generated = generate_model(GeneratorConfig(n_nodes=8, seed=0))
        assert len(generated.op_instances) == generated.n_nodes

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=12))
    def test_validity_property(self, seed, n_nodes):
        """Property-based version of the validity invariant."""
        generated = generate_model(GeneratorConfig(n_nodes=n_nodes, seed=seed))
        assert validation_errors(generated.model) == []


class TestConcretize:
    def test_assignment_satisfies_solver(self):
        generator = GraphGenerator(GeneratorConfig(n_nodes=6, seed=9))
        graph = generator.generate_symbolic()
        generated = concretize(graph, generator.rng)
        for constraint in graph.solver.constraints:
            assert constraint.satisfied(generated.assignment)

    def test_weights_have_requested_split(self):
        generated = generate_model(GeneratorConfig(n_nodes=10, seed=11,
                                                   weight_probability=1.0))
        # At least one placeholder is forced to stay a runtime input.
        assert len(generated.input_names) >= 1
