"""Tests for the generation-strategy and oracle registries.

Covers registration round-trips, the purity/determinism contract of every
builtin strategy, worker-style rebuild-by-name (picklability), the seed-
stream back-compat guarantee for the default strategy, and the deprecation
shims (``make_case_generator``, direct ``DifferentialTester``
construction).
"""

import json
import pickle

import numpy as np
import pytest

from repro.compilers.bugs import BugConfig
from repro.core.concretize import GeneratedModel
from repro.core.difftest import DifferentialTester
from repro.core.fuzzer import FuzzerConfig, generate_for_iteration, iteration_seed
from repro.core.oracle import (
    DEFAULT_ORACLE,
    BaseOracle,
    CrashOnlyOracle,
    build_oracle,
    register_oracle,
    registered_oracles,
)
from repro.core.parallel import default_compiler_factory
from repro.core.strategy import (
    DEFAULT_STRATEGY,
    GenerationStrategy,
    StrategyCapabilities,
    build_strategy,
    register_strategy,
    registered_strategies,
    strategy_entropy,
)
from repro.core.targeted import MOTIFS
from repro.graph.serialize import model_to_dict
from repro.graph.validate import validation_errors
from repro.testing import build_mlp_model

ALL_STRATEGIES = ("graphfuzzer", "lemon", "nnsmith", "targeted", "tzer")


def _model_fingerprint(generated: GeneratedModel) -> str:
    return json.dumps(model_to_dict(generated.model), sort_keys=True,
                      default=str)


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert set(registered_strategies()) >= set(ALL_STRATEGIES)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="csmith"):
            build_strategy("csmith", FuzzerConfig())

    def test_register_round_trip(self):
        class EchoStrategy(GenerationStrategy):
            name = "echo-test"
            capabilities = StrategyCapabilities()

            def __init__(self, config):
                self.config = config

            def generate(self, seed, iteration):
                raise NotImplementedError

        register_strategy("echo-test", EchoStrategy)
        try:
            assert "echo-test" in registered_strategies()
            built = build_strategy("echo-test", FuzzerConfig())
            assert isinstance(built, EchoStrategy)
            # idempotent re-registration of the same factory
            register_strategy("echo-test", EchoStrategy)
            # ... but a different factory under the name is an error
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("echo-test", lambda config: None)
        finally:
            from repro.core import strategy as strategy_module

            strategy_module._STRATEGY_REGISTRY.pop("echo-test", None)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_generate_is_pure_and_valid(self, name):
        strategy = build_strategy(name, FuzzerConfig())
        for iteration in (1, 7):
            first = strategy.generate(99 + iteration, iteration)
            again = strategy.generate(99 + iteration, iteration)
            assert _model_fingerprint(first) == _model_fingerprint(again)
            assert validation_errors(first.model) == []
            assert first.op_instances

    def test_capabilities_match_designs(self):
        config = FuzzerConfig()
        nnsmith = build_strategy("nnsmith", config)
        assert nnsmith.capabilities.supports_op_pool
        assert nnsmith.capabilities.needs_value_search
        for baseline in ("graphfuzzer", "lemon", "tzer", "targeted"):
            caps = build_strategy(baseline, config).capabilities
            assert not caps.supports_op_pool
            assert not caps.needs_value_search

    def test_configs_with_strategy_names_are_picklable(self):
        config = FuzzerConfig(strategy="targeted", oracle="crash")
        clone = pickle.loads(pickle.dumps(config))
        assert clone.strategy == "targeted"
        assert clone.oracle == "crash"
        # ... and the worker-side rebuild yields the named implementations
        assert build_strategy(clone.strategy, clone).name == "targeted"
        oracle = build_oracle(clone.oracle,
                              default_compiler_factory(clone.bugs),
                              bugs=clone.bugs)
        assert oracle.name == "crash"

    def test_targeted_round_robins_every_motif(self):
        strategy = build_strategy("targeted", FuzzerConfig())
        names = {strategy.generate(iteration, iteration).model.name
                 for iteration in range(1, len(MOTIFS) + 1)}
        assert len(names) == len(MOTIFS)


class TestSeedStreams:
    def test_default_strategy_streams_unchanged(self):
        # The nnsmith streams must be bit-identical with and without the
        # strategy tag: existing campaign seeds and the frozen corpus rely
        # on it.
        assert strategy_entropy(None) is None
        assert strategy_entropy(DEFAULT_STRATEGY) is None
        assert iteration_seed(3, 7, 11) == \
            iteration_seed(3, 7, 11, strategy=DEFAULT_STRATEGY)

    def test_other_strategies_get_disjoint_streams(self):
        base = {iteration_seed(0, None, i) for i in range(1, 51)}
        tagged = {iteration_seed(0, None, i, strategy="targeted")
                  for i in range(1, 51)}
        assert not base & tagged

    def test_generate_for_iteration_uses_config_strategy(self):
        config = FuzzerConfig(strategy="targeted")
        generated = generate_for_iteration(config, 3)
        assert generated is not None
        assert generated.model.name.startswith("targeted_")


class TestOracleRegistry:
    def test_builtins_registered(self):
        assert set(registered_oracles()) >= {"crash", DEFAULT_ORACLE}

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="haruspex"):
            build_oracle("haruspex", [])

    def test_register_round_trip(self):
        def factory(compilers, bugs):
            return CrashOnlyOracle(compilers, bugs)

        register_oracle("crash-alias-test", factory)
        try:
            oracle = build_oracle("crash-alias-test",
                                  default_compiler_factory(BugConfig.all()))
            assert isinstance(oracle, CrashOnlyOracle)
            with pytest.raises(ValueError, match="already registered"):
                register_oracle("crash-alias-test", lambda c, b: None)
        finally:
            from repro.core import oracle as oracle_module

            oracle_module._ORACLE_REGISTRY.pop("crash-alias-test", None)

    def test_default_oracle_is_the_differential_tester(self):
        oracle = build_oracle(DEFAULT_ORACLE,
                              default_compiler_factory(BugConfig.all()))
        assert isinstance(oracle, DifferentialTester)
        assert oracle.name == DEFAULT_ORACLE

    def test_difftest_evaluate_matches_run_case(self, rng):
        oracle = build_oracle(DEFAULT_ORACLE,
                              default_compiler_factory(BugConfig.none()),
                              bugs=BugConfig.none())
        model = build_mlp_model()
        from repro.runtime.interpreter import random_inputs

        inputs = random_inputs(model, rng)
        verdicts = oracle.evaluate(model, inputs)
        assert [v.status for v in verdicts] == ["ok", "ok", "ok"]

    def test_crash_oracle_sees_crashes_not_semantics(self):
        bugs = BugConfig.all()
        oracle = CrashOnlyOracle(default_compiler_factory(bugs), bugs)
        from pathlib import Path

        corpus = Path(__file__).resolve().parent.parent / "corpus"
        from repro.dtypes import DType
        from repro.graph.serialize import model_from_dict

        def replay(bug_id):
            entry = json.loads(
                (corpus / f"{bug_id}.json").read_text(encoding="utf-8"))
            model = model_from_dict(entry["model"])
            inputs = {
                name: np.array(value["data"],
                               dtype=DType.from_str(value["dtype"]).numpy
                               ).reshape(value["shape"])
                for name, value in entry["inputs"].items()
            }
            return oracle.run_case(model, inputs=inputs)

        crash_case = replay("turbo-concat-many-inputs")
        assert any(v.status == "crash" and
                   "turbo-concat-many-inputs" in v.triggered_bugs
                   for v in crash_case.verdicts)
        # a semantic corpus bug executes its buggy path but the crash-only
        # oracle never raises a semantic alarm
        semantic_case = replay("graphrt-relu-clip-fusion-f64")
        assert all(v.status != "semantic" for v in semantic_case.verdicts)

    def test_base_oracle_requires_evaluate(self):
        oracle = BaseOracle([], BugConfig.none())
        with pytest.raises(NotImplementedError):
            oracle.evaluate(build_mlp_model(), {})


class TestDeprecationShims:
    def test_make_case_generator_still_importable_and_working(self):
        from repro.experiments import NNSmithCaseGenerator, make_case_generator

        generator = make_case_generator("graphfuzzer", seed=0, n_nodes=5)
        assert generator.name == "graphfuzzer"
        assert validation_errors(generator.next_case()) == []
        nnsmith = NNSmithCaseGenerator(seed=0, n_nodes=5)
        model = nnsmith.next_case()
        assert validation_errors(model) == []
        assert nnsmith.op_instances

    def test_direct_differential_tester_construction(self):
        # The pre-registry spelling keeps working for library users.
        tester = DifferentialTester(default_compiler_factory(BugConfig.none()),
                                    bugs=BugConfig.none())
        case = tester.run_case(build_mlp_model())
        assert [v.status for v in case.verdicts] == ["ok", "ok", "ok"]
