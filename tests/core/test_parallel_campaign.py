"""Tests for the sharded, process-parallel campaign engine."""

import json

import pytest

from repro.compilers.bugs import BugConfig
from repro.core.fuzzer import BugReport, CampaignResult, FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.core.parallel import (
    ParallelCampaign,
    _CellState,
    campaign_result_from_dict,
    campaign_result_to_dict,
    default_compiler_factory,
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
    shard_configs,
    shard_seed,
)


def _loaded_states(campaign):
    """Build the campaign's cell states and load its checkpoint into them."""
    states = [_CellState(task=task) for task in campaign._build_tasks()]
    campaign._load_checkpoint(states)
    return states


def _campaign_config(iterations, seed=7, n_nodes=8):
    # Step-bounded value search so results cannot depend on machine load.
    return deterministic_config(FuzzerConfig(
        generator=GeneratorConfig(n_nodes=n_nodes),
        max_iterations=iterations,
        bugs=BugConfig.all(),
        seed=seed,
    ), max_steps=8)


def _signature(result):
    """The order-independent content of a merged campaign result."""
    return (result.iterations,
            result.generated_models,
            result.generation_failures,
            result.numerically_valid_models,
            frozenset(result.seeded_bugs_found),
            frozenset(result.operator_instances),
            frozenset(report.dedup_key() for report in result.reports))


class TestShardConfigs:
    def test_iteration_budget_split_evenly(self):
        shards = shard_configs(FuzzerConfig(max_iterations=10), 4)
        assert [shard.max_iterations for shard in shards] == [3, 3, 2, 2]

    def test_unbounded_budget_passes_through(self):
        shards = shard_configs(FuzzerConfig(max_iterations=None,
                                            time_budget=1.0), 2)
        assert all(shard.max_iterations is None for shard in shards)
        assert all(shard.time_budget == 1.0 for shard in shards)

    def test_shard_seeds_disjoint_across_shards_and_campaigns(self):
        seeds = {shard_seed(c, i) for c in range(4) for i in range(8)}
        assert len(seeds) == 32

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            shard_configs(FuzzerConfig(), 0)

    def test_shards_do_not_alias_generator_config(self):
        config = FuzzerConfig()
        shards = shard_configs(config, 2)
        assert shards[0].generator is not config.generator
        assert shards[0].generator is not shards[1].generator


class TestCampaignResultMerge:
    def test_merge_unions_and_dedups(self):
        a = CampaignResult(iterations=3, generated_models=3,
                           numerically_valid_models=2,
                           reports=[BugReport("graphrt", "crash", "conversion",
                                              "boom", ["graphrt-x"], 1)],
                           operator_instances={"Add|f32"},
                           seeded_bugs_found={"graphrt-x"},
                           timeline=[{"elapsed": 0.5, "iteration": 1.0}])
        b = CampaignResult(iterations=2, generated_models=2,
                           generation_failures=1,
                           reports=[
                               BugReport("graphrt", "crash", "conversion",
                                         "boom", ["graphrt-x"], 2),
                               BugReport("deepc", "semantic", "transformation",
                                         "mismatch", ["deepc-y"], 1),
                           ],
                           operator_instances={"Mul|f32"},
                           seeded_bugs_found={"deepc-y"},
                           timeline=[{"elapsed": 0.2, "iteration": 1.0}])
        merged = CampaignResult.merge_all([a, b])
        assert merged.iterations == 5
        assert merged.generated_models == 5
        assert merged.generation_failures == 1
        assert merged.numerically_valid_models == 2
        assert merged.seeded_bugs_found == {"graphrt-x", "deepc-y"}
        assert merged.operator_instances == {"Add|f32", "Mul|f32"}
        # the duplicate graphrt crash collapses into one report
        assert len(merged.reports) == 2
        # timeline re-numbered cumulatively in elapsed order
        assert [s["elapsed"] for s in merged.timeline] == [0.2, 0.5]
        assert [s["iteration"] for s in merged.timeline] == [1.0, 2.0]

    def test_merge_empty_is_identity(self):
        a = CampaignResult(iterations=1, seeded_bugs_found={"graphrt-x"})
        merged = CampaignResult.merge_all([a])
        assert _signature(merged) == _signature(a)


class TestCampaignResultSerialization:
    def test_round_trip(self):
        result = CampaignResult(
            iterations=4, generated_models=3, generation_failures=1,
            numerically_valid_models=2, elapsed=1.5,
            reports=[BugReport("turbo", "crash", "execution", "kaboom\nmore",
                               ["turbo-z"], 2)],
            operator_instances={"Conv2d|f32"},
            seeded_bugs_found={"turbo-z"},
            timeline=[{"elapsed": 0.1, "iteration": 1.0}])
        payload = campaign_result_to_dict(result)
        json.dumps(payload)  # must be JSON-compatible
        rebuilt = campaign_result_from_dict(payload)
        assert _signature(rebuilt) == _signature(result)
        assert rebuilt.reports[0].message == "kaboom\nmore"
        assert rebuilt.timeline == result.timeline


@pytest.mark.campaign
class TestSerialParallelEquivalence:
    @pytest.mark.smoke
    def test_smoke_two_worker_campaign(self):
        """Fast smoke: a 2-worker, 10-iteration parallel campaign completes
        and finds something on the fully-seeded compilers."""
        result = run_parallel_campaign(config=_campaign_config(10),
                                       n_workers=2)
        assert result.iterations == 10
        assert result.generated_models > 0
        assert result.operator_instances

    def test_one_worker_parallel_equals_serial(self):
        config = _campaign_config(6, seed=3)
        serial = run_sharded_serial(config, 1)
        parallel = run_parallel_campaign(config=config, n_workers=1)
        assert _signature(parallel) == _signature(serial)

    def test_four_worker_parallel_equals_sharded_serial(self):
        config = _campaign_config(8, seed=5)
        serial = run_sharded_serial(config, 4)
        parallel = run_parallel_campaign(config=config, n_workers=4)
        assert _signature(parallel) == _signature(serial)
        assert parallel.iterations == 8


@pytest.mark.campaign
class TestCheckpointResume:
    def test_completed_shards_are_not_rerun(self, tmp_path, monkeypatch):
        config = _campaign_config(6, seed=11)
        path = str(tmp_path / "campaign.ckpt.json")
        count_path = tmp_path / "factory-invocations"
        monkeypatch.setenv("REPRO_TEST_FACTORY_COUNT_PATH", str(count_path))

        first = run_parallel_campaign(config=config, n_workers=2,
                                      compiler_factory=_counting_factory,
                                      checkpoint_path=path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert set(payload["cells"]) == {"shard0|<default>|O?",
                                         "shard1|<default>|O?"}
        assert all(entry["done"] for entry in payload["cells"].values())
        assert count_path.read_text() == "xx"  # one factory call per shard

        # Resuming must load both shards from the checkpoint without
        # spawning any new shard work.
        count_path.write_text("")
        campaign = ParallelCampaign(config=config, n_workers=2,
                                    compiler_factory=_counting_factory,
                                    checkpoint_path=path)
        resumed = campaign.run()
        assert _signature(resumed) == _signature(first)
        assert count_path.read_text() == ""

    def test_mismatched_campaign_invalidates_checkpoint(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt.json")
        config = _campaign_config(4, seed=1)
        run_parallel_campaign(config=config, n_workers=2, checkpoint_path=path)
        other = ParallelCampaign(config=_campaign_config(4, seed=2),
                                 n_workers=2, checkpoint_path=path)
        assert all(state.result is None and not state.done
                   for state in _loaded_states(other))
        # generator knobs participate in the fingerprint too
        resized = ParallelCampaign(config=_campaign_config(4, seed=1, n_nodes=5),
                                   n_workers=2, checkpoint_path=path)
        assert all(state.result is None and not state.done
                   for state in _loaded_states(resized))
        # ... as does the compiler factory
        refit = ParallelCampaign(config=_campaign_config(4, seed=1),
                                 n_workers=2, checkpoint_path=path,
                                 compiler_factory=_explosive_factory)
        assert all(state.result is None and not state.done
                   for state in _loaded_states(refit))
        # ... and the matrix shape: the same config run as a matrix campaign
        # must never cross-load the flat campaign's cells
        matrixed = ParallelCampaign(config=_campaign_config(4, seed=1),
                                    n_workers=2, checkpoint_path=path,
                                    compiler_sets=[["graphrt", "deepc"]],
                                    opt_levels=[2])
        assert all(state.result is None and not state.done
                   for state in _loaded_states(matrixed))

    def test_malformed_cell_entries_are_skipped(self, tmp_path):
        config = _campaign_config(4, seed=9)
        path = str(tmp_path / "campaign.ckpt.json")
        run_parallel_campaign(config=config, n_workers=2, checkpoint_path=path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        first_key = "shard0|<default>|O?"
        payload["cells"][first_key]["result"]["reports"] = [{"bogus": 1}]
        payload["cells"]["not-a-cell"] = {}  # unknown key is ignored
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        campaign = ParallelCampaign(config=config, n_workers=2,
                                    checkpoint_path=path)
        loaded = _loaded_states(campaign)
        assert loaded[0].result is None   # corrupt entry treated as missing
        assert not loaded[0].done
        assert loaded[1].result is not None  # intact cell still resumes
        assert loaded[1].done

    def test_corrupt_checkpoint_file_starts_fresh(self, tmp_path):
        path = tmp_path / "campaign.ckpt.json"
        path.write_text("not json {")
        campaign = ParallelCampaign(config=_campaign_config(4, seed=1),
                                    n_workers=2, checkpoint_path=str(path))
        assert all(state.result is None and not state.done
                   for state in _loaded_states(campaign))


def _explosive_factory(bugs):
    raise AssertionError("shard should have been resumed from checkpoint")


def _counting_factory(bugs):
    """Real compilers, but record each invocation (workers inherit the env)."""
    import os

    path = os.environ.get("REPRO_TEST_FACTORY_COUNT_PATH")
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("x")
    return default_compiler_factory(bugs)


def _suicidal_factory(bugs):
    import os

    os._exit(42)  # die without reporting back, like an OOM kill


def _claim_eating_worker(worker_index, tasks, factory, task_queue,
                         result_queue):
    """Worker 0 pops a chunk and dies before its claim flushes; the rest
    behave normally — so the coordinator keeps a healthy survivor while one
    chunk is orphaned (gone from the queue, no claim on record)."""
    import os

    from repro.core.parallel import _matrix_worker

    if worker_index == 0:
        task_queue.get()
        os._exit(41)
    _matrix_worker(worker_index, tasks, factory, task_queue, result_queue)


@pytest.mark.campaign
class TestWorkerFailure:
    def test_inprocess_worker_error_is_surfaced(self):
        # --workers 1 runs in-process; the failure is wrapped, not swallowed.
        from repro.errors import ReproError

        config = _campaign_config(2, seed=0)
        with pytest.raises(ReproError, match="worker"):
            run_parallel_campaign(config=config, n_workers=1,
                                  compiler_factory=_explosive_factory)

    def test_pool_worker_error_is_surfaced(self):
        from repro.errors import ReproError

        config = _campaign_config(2, seed=0)
        with pytest.raises(ReproError, match="worker"):
            run_parallel_campaign(config=config, n_workers=2,
                                  compiler_factory=_explosive_factory)

    def test_silent_worker_death_is_detected(self):
        # os._exit in a pool worker (n_workers >= 2 so real processes are
        # used; a single worker runs in-process and cannot die silently).
        from repro.errors import ReproError

        config = _campaign_config(2, seed=0)
        with pytest.raises(ReproError, match="died with exit code"):
            run_parallel_campaign(config=config, n_workers=2,
                                  compiler_factory=_suicidal_factory)

    def test_chunk_lost_with_claimless_dead_worker_terminates(self, monkeypatch):
        """A worker that pops a chunk and dies before its claim message
        flushes must not leave the coordinator spinning on the orphaned
        chunk forever (the chunk is gone from the queue, unclaimed)."""
        import repro.core.parallel as parallel_module
        from repro.errors import ReproError

        monkeypatch.setattr(parallel_module, "_matrix_worker",
                            _claim_eating_worker)
        monkeypatch.setattr(parallel_module, "POLL_TIMEOUT", 0.05)
        monkeypatch.setattr(parallel_module, "ORPHAN_QUIET_POLLS", 5)
        config = _campaign_config(2, seed=0)
        with pytest.raises(ReproError, match="died with exit code"):
            run_parallel_campaign(config=config, n_workers=2)
