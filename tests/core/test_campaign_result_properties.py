"""Algebraic properties of ``CampaignResult.merge`` and checkpoint round-trips.

The matrix campaign engine folds results at three levels (iteration → cell →
campaign) in whatever order workers deliver them, and resumes from JSON
checkpoints; that is only sound if ``merge`` behaves like a commutative
monoid on the observable content and (de)serialization is lossless:

* **associative** — ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`` (exactly, for
  renumber-stable fixtures);
* **commutative** — up to report *identity* (the first-seen duplicate is
  kept, so only the deduplicated key set is order-independent);
* **identity on empty** — merging the empty result changes nothing;
* **round-trip** — ``campaign_result_from_dict(campaign_result_to_dict(r))
  == r``, including the per-cell provenance fields.
"""

import json
import random

import pytest

from repro.core.fuzzer import BugReport, CampaignResult, CellOutcome
from repro.core.parallel import (
    campaign_result_from_dict,
    campaign_result_to_dict,
)

_COMPILERS = ["graphrt", "deepc", "turbo"]
_CELL_SPACE = [
    (0, ("graphrt",), 2),
    (1, ("graphrt",), 2),
    (0, ("deepc", "turbo"), 0),
    (1, ("deepc", "turbo"), 0),
    (0, (), None),
]


def _random_result(seed: int) -> CampaignResult:
    """A pseudo-random result whose timeline is renumber-stable (iteration
    numbers already equal their rank in elapsed order), so identity and
    associativity hold *exactly*, not just up to signature."""
    rnd = random.Random(seed)
    reports = []
    seen_keys = set()
    for _ in range(rnd.randint(0, 4)):
        report = BugReport(compiler=rnd.choice(_COMPILERS),
                           status=rnd.choice(["crash", "semantic"]),
                           phase=rnd.choice(["conversion", "transformation"]),
                           message=f"failure {rnd.randint(0, 5)}\nstack details",
                           triggered_bugs=[f"bug-{rnd.randint(0, 6)}"],
                           iteration=rnd.randint(1, 30))
        # Results produced by the campaign loop are internally deduplicated
        # (fold_case); merge's laws are stated on that domain.
        if report.dedup_key() not in seen_keys:
            seen_keys.add(report.dedup_key())
            reports.append(report)
    elapsed_points = sorted(rnd.sample([round(0.05 * i, 3)
                                        for i in range(1, 200)],
                                       rnd.randint(0, 5)))
    timeline = [{"elapsed": elapsed, "iteration": float(rank)}
                for rank, elapsed in enumerate(elapsed_points, start=1)]
    cells = {}
    for shard, subset, opt in rnd.sample(_CELL_SPACE, rnd.randint(0, 3)):
        outcome = CellOutcome(
            shard=shard, compilers=subset, opt_level=opt,
            iterations=rnd.randint(1, 9),
            seeded_bugs_found={f"bug-{rnd.randint(0, 6)}"
                               for _ in range(rnd.randint(0, 3))},
            report_keys={f"key-{rnd.randint(0, 6)}"
                         for _ in range(rnd.randint(0, 3))})
        cells[outcome.key()] = outcome
    return CampaignResult(
        iterations=rnd.randint(0, 20),
        generated_models=rnd.randint(0, 20),
        generation_failures=rnd.randint(0, 5),
        numerically_valid_models=rnd.randint(0, 20),
        elapsed=round(rnd.uniform(0.0, 30.0), 6),
        reports=reports,
        operator_instances={f"Op{rnd.randint(0, 9)}|f32"
                            for _ in range(rnd.randint(0, 5))},
        seeded_bugs_found={report.triggered_bugs[0] for report in reports},
        timeline=timeline,
        cells=cells,
    )


def _copy(result: CampaignResult) -> CampaignResult:
    """Deep copy through the checkpoint codec (also exercises it)."""
    return campaign_result_from_dict(campaign_result_to_dict(result))


def _signature(result: CampaignResult):
    """Order-independent observable content."""
    return (result.iterations,
            result.generated_models,
            result.generation_failures,
            result.numerically_valid_models,
            result.elapsed,
            frozenset(result.seeded_bugs_found),
            frozenset(result.operator_instances),
            frozenset(report.dedup_key() for report in result.reports),
            frozenset((key, cell.iterations,
                       frozenset(cell.seeded_bugs_found),
                       frozenset(cell.report_keys))
                      for key, cell in result.cells.items()))


SEEDS = range(20)


class TestMergeProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_associative_exactly(self, seed):
        a, b, c = (_random_result(seed * 3 + offset) for offset in range(3))
        left = _copy(a).merge(_copy(b)).merge(_copy(c))
        right = _copy(a).merge(_copy(b).merge(_copy(c)))
        assert left == right

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative_up_to_report_identity(self, seed):
        a, b = _random_result(seed * 2), _random_result(seed * 2 + 1)
        assert _signature(_copy(a).merge(_copy(b))) == \
            _signature(_copy(b).merge(_copy(a)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_empty_is_identity(self, seed):
        a = _random_result(seed)
        assert CampaignResult().merge(_copy(a)) == a
        assert _copy(a).merge(CampaignResult()) == a

    def test_merge_all_of_nothing_is_empty(self):
        assert CampaignResult.merge_all([]) == CampaignResult()

    def test_same_cell_outcomes_accumulate(self):
        first = CellOutcome(shard=0, compilers=("turbo",), opt_level=2,
                            iterations=3, seeded_bugs_found={"bug-1"},
                            report_keys={"k1"})
        second = CellOutcome(shard=0, compilers=("turbo",), opt_level=2,
                             iterations=4, seeded_bugs_found={"bug-2"},
                             report_keys={"k1", "k2"})
        a = CampaignResult(cells={first.key(): first})
        b = CampaignResult(cells={second.key(): second})
        merged = _copy(a).merge(_copy(b))
        assert set(merged.cells) == {first.key()}
        cell = merged.cells[first.key()]
        assert cell.iterations == 7
        assert cell.seeded_bugs_found == {"bug-1", "bug-2"}
        assert cell.report_keys == {"k1", "k2"}

    def test_merge_does_not_alias_other_cells(self):
        outcome = CellOutcome(shard=0, compilers=("turbo",), opt_level=2,
                              iterations=1, seeded_bugs_found={"bug-1"})
        other = CampaignResult(cells={outcome.key(): outcome})
        merged = CampaignResult().merge(other)
        merged.cells[outcome.key()].seeded_bugs_found.add("bug-2")
        assert other.cells[outcome.key()].seeded_bugs_found == {"bug-1"}


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_is_exact(self, seed):
        result = _random_result(seed)
        payload = campaign_result_to_dict(result)
        text = json.dumps(payload)  # must be JSON-compatible
        rebuilt = campaign_result_from_dict(json.loads(text))
        assert rebuilt == result

    def test_round_trip_preserves_cell_provenance_types(self):
        outcome = CellOutcome(shard=1, compilers=("deepc", "graphrt"),
                              opt_level=0, iterations=5,
                              seeded_bugs_found={"deepc-a"},
                              report_keys={"deepc|crash|x"})
        result = CampaignResult(cells={outcome.key(): outcome})
        rebuilt = campaign_result_from_dict(
            json.loads(json.dumps(campaign_result_to_dict(result))))
        cell = rebuilt.cells[outcome.key()]
        assert isinstance(cell.compilers, tuple)
        assert isinstance(cell.seeded_bugs_found, set)
        assert isinstance(cell.report_keys, set)
        assert cell == outcome
        assert cell is not outcome

    def test_empty_result_round_trips(self):
        assert campaign_result_from_dict(
            campaign_result_to_dict(CampaignResult())) == CampaignResult()
