"""Transport-equivalence tests for the distributed campaign fabric.

The fabric's core guarantee: a campaign's findings are a pure function of
``(config, iteration)``, so the *same* seeded campaign must produce
bit-identical results whether it runs in-process, on a LocalTransport
process pool, or across a SocketTransport worker fleet — including through
worker death (requeue), and when a checkpoint written under one transport
is resumed under another.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

import repro.core.parallel as parallel_module
from repro.core.fabric.service import (
    fabric_main,
    query_status,
    run_fabric_worker,
)
from repro.core.fabric.transport import SocketTransport
from repro.core.parallel import (
    ParallelCampaign,
    default_compiler_factory,
    run_parallel_campaign,
)
from repro.core.schedule import CoverageScheduler, StaticScheduler
from repro.errors import ReproError
from repro.testing import (
    campaign_signature,
    checkpoint_signature,
    tiny_campaign_config,
)


def _silent(_message):
    """Worker log sink: fleet chatter stays out of pytest output."""


#: Env fuse for :func:`_fused_factory`: when set to N, the factory raises
#: on its (N+1)-th call *in this process*, interrupting a campaign mid-run
#: with a consistent partial checkpoint on disk.  Unset (the resume run,
#: and forked socket workers, which each start a fresh count), it behaves
#: exactly like :func:`default_compiler_factory` — same qualname both
#: times, so the checkpoint fingerprint matches across the interruption.
_FUSE_ENV = "REPRO_TEST_FABRIC_FACTORY_FUSE"
_fuse_calls = {"count": 0}


def _fused_factory(bugs):
    fuse = os.environ.get(_FUSE_ENV)
    if fuse:
        _fuse_calls["count"] += 1
        if _fuse_calls["count"] > int(fuse):
            raise ReproError("factory fuse blew (test interruption)")
    return default_compiler_factory(bugs)


def _run_socket_campaign(config, *, n_workers=2, die_after=None,
                         compiler_factory=default_compiler_factory,
                         **campaign_kwargs):
    """Run one campaign over a real localhost socket fleet.

    The transport is pre-started (the ``serve`` pattern: bind first so
    workers can join before the campaign plans leases), then ``n_workers``
    forked worker processes connect and the coordinator drains the matrix
    through them.  ``die_after`` arms worker ``w0`` with the
    die-after-N-iterations fault-injection knob.  Returns ``(campaign,
    result_or_error)`` — the error path is used by the fail-mode tests.
    """
    transport = SocketTransport(host="127.0.0.1", port=0)
    transport.start([], compiler_factory)
    context = multiprocessing.get_context("fork")
    workers = []
    for index in range(n_workers):
        kwargs = {"host": "127.0.0.1", "port": transport.port,
                  "name": f"w{index}", "log": _silent}
        if die_after is not None and index == 0:
            kwargs["die_after_iterations"] = die_after
        workers.append(context.Process(target=run_fabric_worker,
                                       kwargs=kwargs, daemon=True))
    for process in workers:
        process.start()
    campaign = ParallelCampaign(config=config, n_workers=n_workers,
                                compiler_factory=compiler_factory,
                                transport=transport, **campaign_kwargs)
    error = None
    result = None
    try:
        try:
            result = campaign.run()
        except ReproError as exc:
            error = exc
    finally:
        for process in workers:
            process.join(timeout=20)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
    return campaign, (result if error is None else error)


@pytest.fixture
def fast_death_detection(monkeypatch):
    """Shrink the coordinator's silent-death poll cadence for tests."""
    monkeypatch.setattr(parallel_module, "POLL_TIMEOUT", 0.1)


# --------------------------------------------------------------------------- #
# Lease sizing (novelty-rate-driven) — pure scheduler units
# --------------------------------------------------------------------------- #
class TestLeaseSizing:
    def test_default_scheduler_grants_base(self):
        scheduler = StaticScheduler()
        assert scheduler.lease_iterations(0, base=4, remaining=10) == 4
        assert scheduler.lease_iterations(0, base=4, remaining=3) == 3
        assert scheduler.lease_iterations(0, base=0, remaining=3) == 1

    def test_unobserved_cell_keeps_base(self):
        scheduler = CoverageScheduler()
        assert scheduler.lease_iterations(0, base=4, remaining=100) == 4

    def test_hot_cell_gets_double_leases(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=10, duration=1.0)  # the fleet's best
        scheduler.observe(1, new_arcs=0, duration=1.0)   # plateaued
        assert scheduler.lease_iterations(0, base=4, remaining=100) == 8

    def test_plateaued_cell_gets_half_leases(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=10, duration=1.0)
        scheduler.observe(1, new_arcs=0, duration=1.0)
        assert scheduler.lease_iterations(1, base=4, remaining=100) == 2

    def test_lease_never_exceeds_remaining(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=10, duration=1.0)
        assert scheduler.lease_iterations(0, base=4, remaining=5) == 5

    def test_explicit_chunk_iterations_pins_granularity(self):
        # The user asked for that granularity; telemetry must not resize it.
        scheduler = CoverageScheduler(chunk_iterations=3)
        scheduler.observe(0, new_arcs=10, duration=1.0)
        scheduler.observe(1, new_arcs=0, duration=1.0)
        assert scheduler.lease_iterations(0, base=3, remaining=100) == 3
        assert scheduler.lease_iterations(1, base=3, remaining=100) == 3

    def test_all_plateaued_keeps_base(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=0, duration=1.0)
        assert scheduler.lease_iterations(0, base=4, remaining=100) == 4


class TestStagnationClock:
    def test_compute_seconds_accumulate_and_reset(self):
        scheduler = CoverageScheduler()
        assert scheduler.seconds_since_novelty(0) == 0.0
        scheduler.observe(0, new_arcs=0, duration=2.0)
        scheduler.observe(0, new_arcs=0, duration=3.0)
        assert scheduler.seconds_since_novelty(0) == pytest.approx(5.0)
        scheduler.observe(0, new_arcs=1, duration=1.0)
        assert scheduler.seconds_since_novelty(0) == 0.0

    def test_stagnation_survives_state_round_trip(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=0, duration=2.5)
        restored = CoverageScheduler()
        restored.load_state(json.loads(json.dumps(scheduler.state_dict())))
        assert restored.seconds_since_novelty(0) == pytest.approx(2.5)

    def test_stagnation_budget_requires_coverage_scheduler(self):
        config = tiny_campaign_config(iterations=2)
        with pytest.raises(ReproError, match="coverage"):
            run_parallel_campaign(config=config, n_workers=1,
                                  schedule="static", stagnation_budget=1.0)


# --------------------------------------------------------------------------- #
# Stagnation-driven early termination (coverage scheduler required)
# --------------------------------------------------------------------------- #
@pytest.mark.campaign
class TestEarlyTermination:
    def test_zero_budget_terminates_plateaued_cell(self, tmp_path):
        # With a zero budget, the first iteration that adds no globally-new
        # arc terminates its cell; a tiny generator saturates its arc set
        # well before 16 iterations.
        config = tiny_campaign_config(iterations=16, seed=3)
        path = str(tmp_path / "stagnated.ckpt.json")
        events = []
        campaign = ParallelCampaign(
            config=config, n_workers=1, schedule="coverage",
            stagnation_budget=0.0, checkpoint_path=path,
            on_event=lambda kind, key, payload: events.append((kind, key)))
        result = campaign.run()
        terminated = [outcome for outcome in result.cells.values()
                      if outcome.early_terminated]
        assert terminated, "no cell hit the zero stagnation budget"
        assert result.iterations < 16
        assert any(kind == "cell_stagnated" for kind, _key in events)

        # v7 checkpoints persist the provenance; a resume must not re-run
        # (or un-terminate) the stagnated cell.
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 7
        assert any(entry.get("early_terminated")
                   for entry in payload["cells"].values())
        resumed = ParallelCampaign(config=config, n_workers=1,
                                   schedule="coverage",
                                   stagnation_budget=0.0,
                                   checkpoint_path=path).run()
        assert campaign_signature(resumed) == campaign_signature(result)
        assert any(outcome.early_terminated
                   for outcome in resumed.cells.values())


# --------------------------------------------------------------------------- #
# The headline equivalence: in-process == local pool == socket fleet
# --------------------------------------------------------------------------- #
@pytest.mark.campaign
class TestTransportEquivalence:
    def test_socket_fleet_matches_inprocess_and_local_pool(self, tmp_path):
        config = tiny_campaign_config(iterations=6, seed=13)
        ck = {name: str(tmp_path / f"{name}.ckpt.json")
              for name in ("inprocess", "local", "socket")}

        inprocess = run_parallel_campaign(config=config, n_workers=1,
                                          n_shards=2,
                                          checkpoint_path=ck["inprocess"])
        local = run_parallel_campaign(config=config, n_workers=2,
                                      n_shards=2,
                                      checkpoint_path=ck["local"])
        _campaign, socketed = _run_socket_campaign(
            config, n_workers=2, n_shards=2,
            checkpoint_path=ck["socket"])

        assert not isinstance(socketed, ReproError), socketed
        assert campaign_signature(local) == campaign_signature(inprocess)
        assert campaign_signature(socketed) == campaign_signature(inprocess)
        # The persisted campaign state is transport-independent too, down
        # to the clock-normalized checkpoint bytes.
        assert (checkpoint_signature(ck["local"])
                == checkpoint_signature(ck["inprocess"]))
        assert (checkpoint_signature(ck["socket"])
                == checkpoint_signature(ck["inprocess"]))

    def test_worker_death_requeue_preserves_findings(
            self, fast_death_detection):
        config = tiny_campaign_config(iterations=6, seed=13)
        baseline = run_parallel_campaign(config=config, n_workers=1,
                                         n_shards=2)

        events = []
        _campaign, survived = _run_socket_campaign(
            config, n_workers=2, n_shards=2, die_after=2,
            fault_tolerance="requeue",
            on_event=lambda kind, key, payload: events.append(
                (kind, payload)))
        assert not isinstance(survived, ReproError), survived
        assert campaign_signature(survived) == campaign_signature(baseline)
        lost = [payload for kind, payload in events
                if kind == "worker_lost"]
        assert lost and lost[0]["worker"] == "w0"

    def test_requeued_chunk_keeps_cell_clock_monotone(
            self, fast_death_detection):
        # Satellite regression: a requeued chunk must continue the cell's
        # *one* compute clock — never reset it, never double-count the
        # iterations folded before the worker died.
        config = tiny_campaign_config(iterations=8, seed=13)
        _campaign, result = _run_socket_campaign(
            config, n_workers=2, n_shards=2, die_after=2,
            fault_tolerance="requeue", schedule="coverage")
        assert not isinstance(result, ReproError), result
        by_cell = {}
        for sample in result.coverage_timeline:
            by_cell.setdefault(sample["cell"], []).append(sample)
        assert by_cell
        for key, samples in by_cell.items():
            folds = [sample["iteration"] for sample in samples]
            # Each iteration folded exactly once, in order: the fold
            # counter walks 1..N with no repeats (a double-counted replay
            # would repeat a value; a reset clock would jump backwards).
            assert folds == [float(i) for i in range(1, len(folds) + 1)], key
            clocks = [sample["cell_elapsed"] for sample in samples]
            assert all(later >= earlier for earlier, later
                       in zip(clocks, clocks[1:])), key
            outcome = result.cells[key]
            assert len(folds) == outcome.iterations


# --------------------------------------------------------------------------- #
# Cross-transport checkpoint resume (fingerprint is transport-agnostic)
# --------------------------------------------------------------------------- #
@pytest.mark.campaign
class TestCrossTransportResume:
    def test_socket_partial_resumes_in_process(self, tmp_path,
                                               fast_death_detection):
        config = tiny_campaign_config(iterations=6, seed=13)
        baseline = run_parallel_campaign(config=config, n_workers=1,
                                         n_shards=2)
        path = str(tmp_path / "crossed.ckpt.json")

        # fail-mode fleet: w0's death mid-lease fails its cell loudly, but
        # every fold persisted before the failure stays in the checkpoint.
        _campaign, error = _run_socket_campaign(
            config, n_workers=2, n_shards=2, die_after=2,
            fault_tolerance="fail", checkpoint_path=path)
        assert isinstance(error, ReproError)
        with open(path, encoding="utf-8") as handle:
            partial = json.load(handle)
        assert not all(entry["done"] for entry in partial["cells"].values())

        resumed = run_parallel_campaign(config=config, n_workers=1,
                                        n_shards=2,
                                        checkpoint_path=path)
        assert campaign_signature(resumed) == campaign_signature(baseline)
        with open(path, encoding="utf-8") as handle:
            completed = json.load(handle)
        assert all(entry["done"] for entry in completed["cells"].values())

    def test_local_partial_resumes_under_socket_fleet(self, tmp_path,
                                                      monkeypatch):
        config = tiny_campaign_config(iterations=6, seed=13)
        baseline = run_parallel_campaign(config=config, n_workers=1,
                                         n_shards=2)
        path = str(tmp_path / "crossed.ckpt.json")

        # Blow the factory fuse on its second cell: the in-process run
        # dies mid-campaign with the first cell's folds checkpointed.
        _fuse_calls["count"] = 0
        monkeypatch.setenv(_FUSE_ENV, "1")
        with pytest.raises(ReproError, match="factory fuse"):
            run_parallel_campaign(config=config, n_workers=1, n_shards=2,
                                  compiler_factory=_fused_factory,
                                  checkpoint_path=path)
        monkeypatch.delenv(_FUSE_ENV)
        with open(path, encoding="utf-8") as handle:
            partial = json.load(handle)
        assert partial["cells"], "interruption left no progress behind"
        assert not all(entry.get("done")
                       for entry in partial["cells"].values()) \
            or len(partial["cells"]) < 2

        _campaign, resumed = _run_socket_campaign(
            config, n_workers=2, n_shards=2,
            compiler_factory=_fused_factory, checkpoint_path=path)
        assert not isinstance(resumed, ReproError), resumed
        assert campaign_signature(resumed) == campaign_signature(baseline)


# --------------------------------------------------------------------------- #
# Status streaming + fabric CLI plumbing
# --------------------------------------------------------------------------- #
@pytest.mark.campaign
class TestStatusStreaming:
    def test_snapshot_reports_campaign_state(self):
        config = tiny_campaign_config(iterations=4, seed=13)
        campaign = ParallelCampaign(config=config, n_workers=1)
        result = campaign.run()
        snapshot = campaign.last_status
        from repro.core.fabric.protocol import PROTOCOL_VERSION

        assert snapshot["protocol"] == PROTOCOL_VERSION
        assert snapshot["iterations"] == result.iterations
        assert snapshot["findings"] == len(result.reports)
        assert set(snapshot["cells"]) == set(result.cells)
        assert all(entry["done"] for entry in snapshot["cells"].values())
        assert "lease_latency" in snapshot

    def test_socket_snapshot_includes_worker_roster_and_latency(self):
        config = tiny_campaign_config(iterations=4, seed=13)
        campaign, result = _run_socket_campaign(config, n_workers=2)
        assert not isinstance(result, ReproError), result
        snapshot = campaign.last_status
        assert set(snapshot["workers"]) == {"w0", "w1"}
        assert snapshot["lease_latency"]["claims"] > 0
        assert snapshot["lease_latency"]["mean_seconds"] is not None


class TestStatusEndpoint:
    def test_query_status_round_trips_snapshot(self):
        transport = SocketTransport(host="127.0.0.1", port=0)
        transport.start([], default_compiler_factory)
        try:
            snapshot = {"iterations": 7, "findings": 2, "cells": {}}
            transport.publish_status(snapshot)
            assert query_status("127.0.0.1", transport.port) == snapshot
        finally:
            transport.stop()

    def test_status_subcommand_prints_snapshot(self, capsys):
        transport = SocketTransport(host="127.0.0.1", port=0)
        transport.start([], default_compiler_factory)
        try:
            transport.publish_status({"findings": 5})
            code = fabric_main(
                ["status", "--connect", f"127.0.0.1:{transport.port}"])
        finally:
            transport.stop()
        assert code == 0
        assert json.loads(capsys.readouterr().out) == {"findings": 5}

    def test_unknown_subcommand_fails_loudly(self, capsys):
        assert fabric_main(["teleport"]) == 2
        assert "unknown fabric subcommand" in capsys.readouterr().err

    def test_campaign_main_dispatches_fabric_subcommands(self, capsys):
        from repro.campaign import main

        transport = SocketTransport(host="127.0.0.1", port=0)
        transport.start([], default_compiler_factory)
        try:
            transport.publish_status({"findings": 1})
            code = main(["status", "--connect",
                         f"127.0.0.1:{transport.port}"])
        finally:
            transport.stop()
        assert code == 0
        assert json.loads(capsys.readouterr().out) == {"findings": 1}
