"""Scheduler-equivalence and coverage-feedback tests for the campaign engine.

The contract under test: a scheduler may reorder and redirect *leases* but
never changes which ``(config, iteration)`` pairs run or their seeds — so
for a fixed-iteration matrix and fixed campaign seed the merged findings
(bug ids + dedup keys) are bit-identical across ``static``, ``adaptive``
and ``coverage`` scheduling; only lease order/placement (and the coverage
telemetry itself) differ.  Plus: the checkpoint round-trips scheduler state
and per-cell coverage across a mid-campaign kill, older checkpoint formats
are rejected loudly, and a coverage-scheduler resume validates the
checkpointed novelty window instead of silently re-windowing stale samples.
"""

import json

import pytest

from repro.compilers import CompileOptions, DeepCCompiler, GraphRTCompiler, \
    TurboCompiler
from repro.compilers.bugs import BugConfig
from repro.core.parallel import (
    CHECKPOINT_FORMAT_VERSION,
    ParallelCampaign,
    run_parallel_campaign,
)
from repro.core.schedule import (
    CoverageScheduler,
    Scheduler,
    build_scheduler,
    registered_schedulers,
)
from repro.errors import ReproError
from repro.experiments.venn import campaign_cell_sets
from repro.testing import campaign_signature, tiny_campaign_config

SCHEDULES = ("static", "adaptive", "coverage")
MATRIX = dict(compiler_sets=[["graphrt", "deepc"], ["turbo"]],
              opt_levels=[2], n_shards=2)


@pytest.fixture(scope="module", autouse=True)
def warm_compiler_imports():
    """Compile once per system before tracing anything.

    Module bodies executed under an active tracer contribute import-time
    arcs exactly once per process; warming the imports first makes arc
    sets comparable across campaigns run in this process.
    """
    from repro.testing import build_mlp_model

    model = build_mlp_model()
    for compiler_cls in (GraphRTCompiler, DeepCCompiler, TurboCompiler):
        compiled = compiler_cls(CompileOptions(bugs=BugConfig.none()))
        compiled.compile_model(model)


class TestRegistry:
    def test_builtin_schedulers_registered(self):
        assert registered_schedulers() == ("adaptive", "coverage", "static")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError, match="nosuch"):
            build_scheduler("nosuch")

    def test_only_coverage_wants_telemetry(self):
        wants = {name: build_scheduler(name).wants_coverage
                 for name in registered_schedulers()}
        assert wants == {"static": False, "adaptive": False,
                         "coverage": True}

    def test_chunk_sizes(self):
        assert build_scheduler("static").chunk_size(12, False) == 12
        assert build_scheduler("adaptive").chunk_size(12, False) == 3
        assert build_scheduler("coverage").chunk_size(12, False) == 3
        # explicit chunk_iterations wins for every scheduler ...
        assert build_scheduler("static", 2).chunk_size(12, False) == 2
        # ... and time-budgeted cells are never split (budget multiplication)
        assert build_scheduler("coverage", 2).chunk_size(12, True) == 12


class TestCoverageSchedulerPolicy:
    def test_explores_unobserved_cells_first_in_planned_order(self):
        scheduler = CoverageScheduler()
        pending = [3, 1, 2]
        cell_of = {1: 10, 2: 20, 3: 30}
        assert scheduler.select(pending, cell_of) == 3  # planner order

    def test_leases_to_best_novelty_rate(self):
        scheduler = CoverageScheduler()
        scheduler.observe(10, new_arcs=1, duration=1.0)   # 1 arc/s
        scheduler.observe(20, new_arcs=10, duration=1.0)  # 10 arcs/s
        assert scheduler.select([1, 2], {1: 10, 2: 20}) == 2

    def test_unobserved_beats_any_rate(self):
        scheduler = CoverageScheduler()
        scheduler.observe(10, new_arcs=100, duration=0.1)
        assert scheduler.select([1, 2], {1: 10, 2: 99}) == 2

    def test_state_roundtrip(self):
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=5, duration=0.5)
        scheduler.observe(1, new_arcs=0, duration=0.2)
        clone = CoverageScheduler()
        clone.load_state(json.loads(json.dumps(scheduler.state_dict())))
        assert clone.novelty_rate(0) == scheduler.novelty_rate(0)
        assert clone.novelty_rate(1) == scheduler.novelty_rate(1)
        assert clone.novelty_rate(2) is None

    def test_default_scheduler_state_is_empty(self):
        assert Scheduler.state_dict(build_scheduler("static")) == {}

    def test_load_state_rejects_window_mismatch(self, monkeypatch):
        """Regression: load_state used to persist ``window`` but ignore it
        on restore, silently re-windowing stale novelty samples when the
        engine's WINDOW changed between runs."""
        scheduler = CoverageScheduler()
        scheduler.observe(0, new_arcs=5, duration=0.5)
        payload = json.loads(json.dumps(scheduler.state_dict()))
        assert payload["window"] == CoverageScheduler.WINDOW

        clone = CoverageScheduler()
        monkeypatch.setattr(CoverageScheduler, "WINDOW",
                            CoverageScheduler.WINDOW + 3)
        with pytest.raises(ReproError, match="novelty window"):
            clone.load_state(payload)

    def test_load_state_rejects_corrupt_window(self):
        scheduler = CoverageScheduler()
        with pytest.raises(ReproError, match="non-integer"):
            scheduler.load_state({"window": "wide", "recent": {}})

    def test_load_state_accepts_matching_window(self):
        scheduler = CoverageScheduler()
        scheduler.observe(3, new_arcs=2, duration=0.1)
        clone = CoverageScheduler()
        clone.load_state(json.loads(json.dumps(scheduler.state_dict())))
        assert clone.novelty_rate(3) == scheduler.novelty_rate(3)

    def test_load_state_tolerates_missing_window(self):
        # Hand-crafted payloads without a window entry restore as before
        # (nothing to validate against).
        scheduler = CoverageScheduler()
        scheduler.load_state({"recent": {"1": [[4, 0.5]]}})
        assert scheduler.novelty_rate(1) == pytest.approx(8.0)


@pytest.mark.smoke
@pytest.mark.campaign
class TestSchedulerEquivalence:
    def test_findings_identical_across_schedulers_inprocess(self):
        config = tiny_campaign_config(iterations=6, seed=17)
        results = {schedule: run_parallel_campaign(
            config=config, n_workers=1, schedule=schedule, **MATRIX)
            for schedule in SCHEDULES}
        signatures = {schedule: campaign_signature(result)
                      for schedule, result in results.items()}
        assert signatures["static"] == signatures["adaptive"] \
            == signatures["coverage"]
        # coverage is the only scheduler that pays for telemetry
        assert not results["static"].coverage_arcs
        assert not results["adaptive"].coverage_arcs
        assert results["coverage"].coverage_arcs

    def test_findings_identical_with_worker_pool(self):
        config = tiny_campaign_config(iterations=6, seed=23)
        static = run_parallel_campaign(config=config, n_workers=1,
                                       schedule="static", **MATRIX)
        coverage = run_parallel_campaign(config=config, n_workers=2,
                                         schedule="coverage", **MATRIX)
        assert campaign_signature(static) == campaign_signature(coverage)

    def test_adaptive_flag_is_an_alias(self):
        config = tiny_campaign_config(iterations=4, seed=5)
        campaign = ParallelCampaign(config=config, n_workers=1,
                                    adaptive=True)
        assert campaign._build_scheduler().name == "adaptive"
        explicit = ParallelCampaign(config=config, n_workers=1,
                                    schedule="coverage", adaptive=True)
        assert explicit._build_scheduler().name == "coverage"


@pytest.mark.campaign
class TestCoverageTelemetry:
    def test_per_cell_and_global_series(self):
        config = tiny_campaign_config(iterations=4, seed=11)
        result = run_parallel_campaign(config=config, n_workers=1,
                                       schedule="coverage", **MATRIX)
        # one sample per folded iteration, tagged with its cell
        assert len(result.coverage_timeline) == result.iterations
        cells_seen = {sample["cell"] for sample in result.coverage_timeline}
        assert cells_seen == set(result.cells)
        # global series is monotone and ends at the merged union size
        global_series = [sample["global_total"]
                         for sample in result.coverage_timeline]
        assert global_series == sorted(global_series)
        assert global_series[-1] == len(result.coverage_arcs)
        # per-cell provenance reassembles the global union
        union = set()
        for cell in result.cells.values():
            assert cell.coverage_arcs
            union |= cell.coverage_arcs
        assert union == result.coverage_arcs

    def test_venn_tooling_slices_coverage_like_bugs(self):
        config = tiny_campaign_config(iterations=4, seed=11)
        result = run_parallel_campaign(config=config, n_workers=1,
                                       schedule="coverage", **MATRIX)
        by_subset = campaign_cell_sets(result, by="compiler_set",
                                       what="coverage")
        assert set(by_subset) == {"deepc+graphrt", "turbo"}
        assert all(arcs for arcs in by_subset.values())
        with pytest.raises(ValueError):
            campaign_cell_sets(result, what="banana")


class _InterruptAfter(ParallelCampaign):
    """Campaign that dies (after checkpointing) at the Nth folded iteration."""

    def __init__(self, interrupt_after, **kwargs):
        super().__init__(**kwargs)
        self._folds_left = interrupt_after

    def _fold_iteration(self, states, cell_index, iteration, partial):
        super()._fold_iteration(states, cell_index, iteration, partial)
        self._folds_left -= 1
        if self._folds_left <= 0:
            raise KeyboardInterrupt("simulated mid-campaign kill")


@pytest.mark.campaign
class TestCheckpointPersistence:
    def test_kill_and_resume_under_coverage_scheduler(self, tmp_path):
        config = tiny_campaign_config(iterations=6, seed=29)
        reference = run_parallel_campaign(config=config, n_workers=1,
                                          schedule="coverage", **MATRIX)
        path = str(tmp_path / "coverage.ckpt.json")
        interrupted = _InterruptAfter(
            interrupt_after=7, config=config, n_workers=1,
            schedule="coverage", checkpoint_path=path, **MATRIX)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["format_version"] == CHECKPOINT_FORMAT_VERSION == 7
        assert payload["scheduler"]["name"] == "coverage"
        assert payload["scheduler"]["state"]["recent"]  # rates persisted
        # per-cell cumulative coverage is in the checkpoint
        assert any(entry.get("result", {}).get("coverage_arcs")
                   for entry in payload["cells"].values()
                   if entry.get("result"))

        resumed = ParallelCampaign(config=config, n_workers=1,
                                   schedule="coverage",
                                   checkpoint_path=path, **MATRIX)
        result = resumed.run()
        # converges to the uninterrupted run: findings AND coverage
        assert campaign_signature(result) == campaign_signature(reference)
        assert result.coverage_arcs == reference.coverage_arcs
        # the stitched series stays on one clock: post-resume samples are
        # stamped after the restored run's, so the merged global curve
        # never goes backwards
        global_series = [sample["global_total"]
                         for sample in result.coverage_timeline]
        assert global_series == sorted(global_series)

    def test_untraced_checkpoint_rejected_under_coverage(self, tmp_path):
        """A static-run checkpoint has no arcs for its completed iterations;
        resuming it under --schedule coverage would silently present a
        partial arc set as the campaign's coverage — so it is rejected
        loudly (same principle as the v3 rejection), not silently
        restarted."""
        config = tiny_campaign_config(iterations=4, seed=31)
        path = str(tmp_path / "static.ckpt.json")
        run_parallel_campaign(config=config, n_workers=1,
                              schedule="static", checkpoint_path=path,
                              **MATRIX)
        with pytest.raises(ReproError, match="without coverage feedback"):
            run_parallel_campaign(config=config, n_workers=1,
                                  schedule="coverage",
                                  checkpoint_path=path, **MATRIX)

    def test_coverage_checkpoint_resumes_under_static(self, tmp_path):
        """The reverse direction is fine: findings are scheduler-independent,
        so a coverage-written checkpoint resumes under static — but the
        restored arc data is dropped rather than reported as a partial
        coverage measurement."""
        config = tiny_campaign_config(iterations=6, seed=37)
        reference = run_parallel_campaign(config=config, n_workers=1,
                                          schedule="static", **MATRIX)
        path = str(tmp_path / "coverage.ckpt.json")
        interrupted = _InterruptAfter(
            interrupt_after=5, config=config, n_workers=1,
            schedule="coverage", checkpoint_path=path, **MATRIX)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()
        resumed = run_parallel_campaign(config=config, n_workers=1,
                                        schedule="static",
                                        checkpoint_path=path, **MATRIX)
        assert campaign_signature(resumed) == campaign_signature(reference)
        assert not resumed.coverage_arcs
        assert not resumed.coverage_timeline

    def test_v3_checkpoints_are_rejected_loudly(self, tmp_path):
        config = tiny_campaign_config(iterations=4, seed=3)
        path = tmp_path / "old.ckpt.json"
        path.write_text(json.dumps({"format_version": 3, "cells": {}}),
                        encoding="utf-8")
        with pytest.raises(ReproError, match="format_version 3"):
            run_parallel_campaign(config=config, n_workers=1,
                                  checkpoint_path=str(path))

    def test_corrupt_checkpoint_still_starts_fresh(self, tmp_path):
        config = tiny_campaign_config(iterations=2, seed=3)
        path = tmp_path / "corrupt.ckpt.json"
        path.write_text("not json {", encoding="utf-8")
        result = run_parallel_campaign(config=config, n_workers=1,
                                       checkpoint_path=str(path))
        assert result.iterations == 2
