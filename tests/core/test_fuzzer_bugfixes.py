"""Regression tests for the campaign-loop bugfixes.

Covers: empty-message report dedup (``first_line``), the non-linear
campaign/iteration seed mixing, and failed-value-search input handling.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import first_line
from repro.core.concretize import GeneratedModel
from repro.core.difftest import CompilerVerdict, DifferentialTester
from repro.core.fuzzer import (
    BugReport,
    CampaignResult,
    FuzzerConfig,
    generate_for_iteration,
    iteration_seed,
    search_and_difftest,
)
from repro.core.generator import GeneratorConfig
from repro.core.value_search import SearchResult
from repro.testing import build_mlp_model


class TestFirstLine:
    def test_empty_message(self):
        assert first_line("") == ""

    def test_truncates_to_limit(self):
        assert first_line("x" * 500) == "x" * 160
        assert first_line("x" * 500, limit=10) == "x" * 10

    def test_takes_first_line_only(self):
        assert first_line("head\ntail") == "head"

    def test_newline_only_message(self):
        assert first_line("\n\n") == ""


class TestEmptyMessageDedup:
    def test_unique_crashes_with_empty_message(self):
        result = CampaignResult(reports=[
            BugReport("graphrt", "crash", "conversion", "", [], 1),
            BugReport("graphrt", "crash", "conversion", "boom", [], 2),
        ])
        assert result.unique_crashes() == 2
        assert result.unique_crashes("graphrt") == 2
        assert result.unique_crashes("deepc") == 0

    def test_verdict_dedup_key_with_empty_message(self):
        verdict = CompilerVerdict("deepc", "crash", "conversion", "")
        assert verdict.dedup_key() == "deepc|crash|"

    def test_report_dedup_key_matches_verdict(self):
        verdict = CompilerVerdict("deepc", "crash", "conversion", "msg\nrest")
        report = BugReport("deepc", "crash", "conversion", "msg\nrest", [], 3)
        assert report.dedup_key() == verdict.dedup_key()


class TestIterationSeedMixing:
    def test_adjacent_campaign_seeds_do_not_share_streams(self):
        # The old linear scheme made campaign seed s at iteration i + 1 equal
        # campaign seed s + 1 at iteration i; the SeedSequence mixing must
        # produce fully disjoint per-iteration seed streams.
        stream_a = {iteration_seed(0, None, i) for i in range(1, 101)}
        stream_b = {iteration_seed(1, None, i) for i in range(1, 101)}
        assert not stream_a & stream_b

    def test_generator_seed_participates(self):
        assert iteration_seed(0, 1, 5) != iteration_seed(0, 2, 5)

    def test_deterministic(self):
        assert iteration_seed(3, 7, 11) == iteration_seed(3, 7, 11)

    def test_generate_for_iteration_distinct_across_campaigns(self):
        base = GeneratorConfig(n_nodes=4)
        config_a = FuzzerConfig(generator=base, seed=0)
        config_b = FuzzerConfig(generator=dataclasses.replace(base), seed=1)
        models_a = [generate_for_iteration(config_a, i) for i in range(1, 4)]
        models_b = [generate_for_iteration(config_b, i) for i in range(1, 4)]
        sigs_a = [tuple(m.op_instances) for m in models_a if m is not None]
        sigs_b = [tuple(m.op_instances) for m in models_b if m is not None]
        assert sigs_a and sigs_b
        assert sigs_a != sigs_b


class _CapturingTester:
    """Stands in for DifferentialTester, recording run_case arguments."""

    def __init__(self):
        self.calls = []

    def run_case(self, model, inputs=None, numerically_valid=None):
        self.calls.append({"model": model, "inputs": inputs,
                           "numerically_valid": numerically_valid})
        from repro.core.difftest import CaseResult

        return CaseResult(model=model, numerically_valid=bool(numerically_valid))


def _generated_mlp():
    model = build_mlp_model()
    return GeneratedModel(model=model, assignment={}, n_nodes=len(model.nodes),
                          input_names=list(model.inputs))


class TestFailedSearchInputHandling:
    def _run(self, monkeypatch, search_result):
        monkeypatch.setattr("repro.core.fuzzer.search_values",
                            lambda *args, **kwargs: search_result)
        tester = _CapturingTester()
        generated = _generated_mlp()
        case = search_and_difftest(tester, FuzzerConfig(), generated,
                                    np.random.default_rng(0))
        assert case is not None
        return generated, tester.calls[0]

    def test_failed_search_inputs_are_not_forwarded(self, monkeypatch):
        poisoned = {"x": np.full((2, 8), np.nan, dtype=np.float32)}
        weights = {"w": np.full((8, 6), np.nan, dtype=np.float32)}
        generated, call = self._run(
            monkeypatch, SearchResult(False, inputs=poisoned, weights=weights))
        assert call["inputs"] is not None
        assert not np.isnan(next(iter(call["inputs"].values()))).any()
        # the failed search's last-trial weights must not be applied either
        assert call["model"] is generated.model
        # validity must be re-derived downstream, not assumed
        assert call["numerically_valid"] is None

    def test_successful_search_inputs_forwarded_with_validity(self, monkeypatch):
        good = {"x": np.full((2, 8), 2.0, dtype=np.float32)}
        generated, call = self._run(monkeypatch, SearchResult(True, inputs=good))
        assert call["inputs"] is good
        assert call["model"] is generated.model  # no weights to apply
        assert call["numerically_valid"] is True


class TestRunCaseValidityHint:
    def test_hint_overrides_oracle(self, mlp_model, rng):
        from repro.compilers import CompileOptions, GraphRTCompiler
        from repro.compilers.bugs import BugConfig
        from repro.runtime.interpreter import random_inputs

        tester = DifferentialTester(
            [GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))],
            bugs=BugConfig.none())
        inputs = random_inputs(mlp_model, rng)
        derived = tester.run_case(mlp_model, inputs)
        assert derived.numerically_valid
        hinted = tester.run_case(mlp_model, inputs, numerically_valid=False)
        assert not hinted.numerically_valid
