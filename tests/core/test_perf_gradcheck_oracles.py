"""Tests for the ``perf`` and ``gradcheck`` oracles.

The perf oracle's timing harness is driven by an injectable clock, so the
detection logic (calibration, thresholding, verdict shape) is tested fully
deterministically — CI never depends on real wall time except for the one
end-to-end check of the seeded repack bug, whose ~100x slowdown dwarfs any
plausible scheduler noise.  Also pins the ``BaseOracle.run_case`` satellite
fixes: the optional ``rng`` threads through to random-input generation and
``numerically_valid=None`` is preserved instead of being coerced to False.
"""

import numpy as np
import pytest

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.core.difftest import DifferentialTester
from repro.core.oracle import (
    BaseOracle,
    GradientCheckOracle,
    PerfRegressionOracle,
    build_oracle,
    registered_oracles,
)
from repro.errors import CompilerError
from repro.graph.builder import GraphBuilder


class FakeClock:
    """Scripted ``perf_counter`` replacement: returns the given instants."""

    def __init__(self, times):
        self.times = list(times)

    def __call__(self):
        return self.times.pop(0)


class _NoopCompiler:
    """Fake system whose executable does nothing; timing comes entirely
    from the injected fake clock."""

    name = "noop"

    def __init__(self, options=None):
        self.options = options or CompileOptions()

    def compile_model(self, model):
        class _Compiled:
            triggered_bugs = []

            def run(self, inputs):
                return {}

        return _Compiled()

    def supported_ops(self, candidate_ops):
        return list(candidate_ops)


class _CrashingCompiler(_NoopCompiler):
    name = "boom"

    def compile_model(self, model):
        raise CompilerError("kaboom in a pass")


def _ms(*milliseconds):
    return [value / 1000.0 for value in milliseconds]


class TestPerfOracleDeterministic:
    def test_registered(self):
        assert "perf" in registered_oracles()
        oracle = build_oracle("perf", [], bugs=BugConfig.none())
        assert isinstance(oracle, PerfRegressionOracle)

    def test_regression_detected_with_fake_clock(self, mlp_model):
        # repeats=1/warmup=0 with explicit threshold: exactly two timed
        # runs — optimized [0, 10ms], baseline [10ms, 11ms].
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=2))],
            bugs=BugConfig.none(),
            timer=FakeClock(_ms(0, 10, 10, 11)),
            repeats=1, warmup=0, threshold=2.0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "perf"
        assert verdict.phase == "transformation"
        assert "10.0x slower" in verdict.message
        assert verdict.found_bug

    def test_no_regression_is_ok(self, mlp_model):
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=2))],
            bugs=BugConfig.none(),
            timer=FakeClock(_ms(0, 1, 1, 2)),
            repeats=1, warmup=0, threshold=2.0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "ok"

    def test_same_clock_same_verdict(self, mlp_model):
        """Determinism: identical scripted clocks produce identical
        verdicts — the fake clock removes every timing dependency."""
        def run():
            oracle = PerfRegressionOracle(
                [_NoopCompiler(CompileOptions(opt_level=2))],
                bugs=BugConfig.none(),
                timer=FakeClock(_ms(0, 10, 10, 11)),
                repeats=1, warmup=0, threshold=2.0)
            (verdict,) = oracle.run_case(mlp_model).verdicts
            return (verdict.status, verdict.phase, verdict.message)

        assert run() == run()

    def test_noisy_calibration_widens_threshold(self, mlp_model):
        # Calibration measures the baseline twice: 1ms then 2ms -> noise
        # 2.0 -> threshold 1 + 4*(2-1) = 5.0.  The 4.5x "regression"
        # afterwards stays under it.
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=2))],
            bugs=BugConfig.none(),
            timer=FakeClock(_ms(0, 1, 1, 3, 3, 7.5, 7.5, 8.5)),
            repeats=1, warmup=0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "ok"
        assert oracle._threshold == pytest.approx(5.0)

    def test_quiet_calibration_keeps_floor(self, mlp_model):
        # Calibration 1ms/1ms -> noise 1.0 -> threshold floor 4.0; the same
        # 4.5x slowdown is now over it.
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=2))],
            bugs=BugConfig.none(),
            timer=FakeClock(_ms(0, 1, 1, 2, 2, 6.5, 6.5, 7.5)),
            repeats=1, warmup=0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "perf"
        assert oracle._threshold == pytest.approx(4.0)

    def test_o0_build_has_no_contrast(self, mlp_model):
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=0))],
            bugs=BugConfig.none(), timer=FakeClock([]),
            repeats=1, warmup=0, threshold=2.0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "ok"

    def test_crash_reported_like_difftest(self, mlp_model):
        oracle = PerfRegressionOracle([_CrashingCompiler()],
                                      bugs=BugConfig.none(),
                                      timer=FakeClock([]))
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "crash"
        assert verdict.phase == "transformation"


class TestPerfOracleEndToEnd:
    def test_seeded_repack_bug_detected(self, mlp_model):
        """The seeded MatMul repack bug makes the optimized GraphRT build
        recompute each product 256x; with min-of-repeats timing the
        measured slowdown dwarfs the calibrated threshold."""
        bugs = BugConfig.only("graphrt-matmul-repack-small")
        oracle = PerfRegressionOracle(
            [GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs))],
            bugs=bugs)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "perf"
        assert "graphrt-matmul-repack-small" in verdict.triggered_bugs
        # Per-node attribution: the repacked Gemm/MatMul carries the
        # slowdown, and the provenance says so (node, op, excess share).
        assert verdict.slow_nodes
        assert verdict.slow_nodes[0]["op"] in ("Gemm", "MatMul")
        assert verdict.slow_nodes[0]["share"].endswith("%")

    def test_fake_compiled_executables_get_no_attribution(self, mlp_model):
        # Duck-typing contract: executables without a profile_nodes hook
        # (codegen backends, test doubles) yield empty slow_nodes and the
        # attribution consumes zero timer reads — the sentinel instant
        # stays unread, so scripted FakeClock tests never go out of sync.
        clock = FakeClock(_ms(0, 10, 10, 11, 99))
        oracle = PerfRegressionOracle(
            [_NoopCompiler(CompileOptions(opt_level=2))],
            bugs=BugConfig.none(), timer=clock,
            repeats=1, warmup=0, threshold=2.0)
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "perf"
        assert verdict.slow_nodes == []
        assert clock.times == _ms(99)

    def test_clean_compiler_not_flagged(self, mlp_model):
        oracle = PerfRegressionOracle(
            [GraphRTCompiler(CompileOptions(opt_level=2,
                                            bugs=BugConfig.none()))],
            bugs=BugConfig.none())
        (verdict,) = oracle.run_case(mlp_model).verdicts
        assert verdict.status == "ok"

    def test_repack_tag_survives_gemm_fusion(self):
        """Regression: MatMulRepackSelection must run *after* GemmFusion —
        a MatMul+Add pair is rewritten into a fresh Gemm node, which used
        to shed the repack tag (trigger recorded, slowdown never
        executed)."""
        builder = GraphBuilder("mm_add")
        x = builder.input([3, 4])
        gen = np.random.default_rng(0)
        w = builder.weight(gen.normal(0, 0.4, size=(4, 5)).astype(np.float32))
        bias = builder.weight(np.zeros(5, dtype=np.float32))
        product = builder.op1("MatMul", [x, w])
        builder.output(builder.op1("Add", [product, bias]))
        model = builder.build()

        bugs = BugConfig.only("graphrt-matmul-repack-small")
        compiled = GraphRTCompiler(
            CompileOptions(opt_level=2, bugs=bugs)).compile_model(model)
        assert "graphrt-matmul-repack-small" in compiled.triggered_bugs
        assert any(node.attrs.get("_graphrt_repack_blocks")
                   for node in compiled.model.nodes), \
            "repack tag lost to a later rewriting pass"
        oracle = PerfRegressionOracle(
            [GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs))],
            bugs=bugs)
        (verdict,) = oracle.run_case(model).verdicts
        assert verdict.status == "perf"

    def test_distinct_seeded_bugs_get_distinct_report_keys(self):
        """Regression: perf/gradient findings dedup by triggered seeded
        bugs, not compiler/phase alone — two wrong-VJP bugs in one system
        must not collapse into a single report."""
        from repro.core.difftest import CompilerVerdict

        tanh = CompilerVerdict("autodiff", "gradient", "backward",
                               "wrong gradient: ...",
                               ["autodiff-tanh-grad-linear"])
        sigmoid = CompilerVerdict("autodiff", "gradient", "backward",
                                  "wrong gradient: ...",
                                  ["autodiff-sigmoid-grad-unscaled"])
        assert tanh.dedup_key() != sigmoid.dedup_key()

    def test_repack_bug_invisible_to_difftest(self, mlp_model):
        """The pessimization is results-preserving: differential testing
        sees identical outputs and reports nothing."""
        bugs = BugConfig.only("graphrt-matmul-repack-small")
        tester = DifferentialTester(
            [GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs))],
            bugs=bugs)
        case = tester.run_case(mlp_model)
        assert all(v.status == "ok" for v in case.verdicts)
        # ... though the trigger itself is recorded at compile time
        assert any("graphrt-matmul-repack-small" in v.triggered_bugs
                   for v in case.verdicts)


def _tanh_model():
    builder = GraphBuilder("tanh")
    x = builder.input([2, 3])
    builder.output(builder.op1("Tanh", [x]))
    return builder.build()


def _sigmoid_model():
    builder = GraphBuilder("sigmoid")
    x = builder.input([2, 3])
    builder.output(builder.op1("Sigmoid", [x]))
    return builder.build()


class TestGradcheckOracle:
    def test_registered(self):
        assert "gradcheck" in registered_oracles()
        oracle = build_oracle("gradcheck", [], bugs=BugConfig.none())
        assert isinstance(oracle, GradientCheckOracle)

    def test_correct_gradients_pass(self, mlp_model):
        oracle = GradientCheckOracle(
            [GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))],
            bugs=BugConfig.none())
        case = oracle.run_case(mlp_model)
        assert [v.status for v in case.verdicts] == ["ok", "ok"]
        assert case.verdicts[0].compiler == "autodiff"

    @pytest.mark.parametrize("bug_id,model_builder", [
        ("autodiff-tanh-grad-linear", _tanh_model),
        ("autodiff-sigmoid-grad-unscaled", _sigmoid_model),
    ])
    def test_seeded_wrong_vjp_detected(self, bug_id, model_builder):
        bugs = BugConfig.only(bug_id)
        oracle = GradientCheckOracle([], bugs=bugs)
        # Small activations keep the buggy and true derivatives far apart
        # (both bugs degenerate to the truth as the activation saturates).
        inputs = {"x1": np.full((2, 3), 0.5, dtype=np.float32)}
        case = oracle.run_case(model_builder(), inputs=inputs)
        (verdict,) = case.verdicts
        assert verdict.compiler == "autodiff"
        assert verdict.status == "gradient"
        assert verdict.phase == "backward"
        assert bug_id in verdict.triggered_bugs
        # per-output max-error provenance
        assert "max |analytic-numeric|" in verdict.message
        assert "analytic" in verdict.message and "numeric" in verdict.message

    def test_wrong_vjp_observed_through_backends_too(self):
        bugs = BugConfig.only("autodiff-tanh-grad-linear")
        oracle = GradientCheckOracle(
            [GraphRTCompiler(CompileOptions(bugs=bugs))], bugs=bugs)
        case = oracle.run_case(_tanh_model())
        statuses = {v.compiler: v.status for v in case.verdicts}
        assert statuses == {"autodiff": "gradient", "graphrt": "gradient"}

    def test_wrong_vjp_invisible_to_difftest(self):
        bugs = BugConfig.only("autodiff-tanh-grad-linear")
        tester = DifferentialTester(
            [GraphRTCompiler(CompileOptions(bugs=bugs))], bugs=bugs)
        case = tester.run_case(_tanh_model())
        assert all(v.status == "ok" for v in case.verdicts)
        assert all(not v.triggered_bugs for v in case.verdicts)

    def test_numerically_invalid_case_skipped(self):
        builder = GraphBuilder("invalid")
        x = builder.input([2, 2])
        builder.output(builder.op1("Tanh", [x]))
        model = builder.build()
        oracle = GradientCheckOracle(
            [], bugs=BugConfig.only("autodiff-tanh-grad-linear"))
        case = oracle.run_case(model, numerically_valid=False)
        assert all(v.status == "ok" for v in case.verdicts)

    def test_integer_only_model_skipped(self):
        from repro.dtypes import DType

        builder = GraphBuilder("ints")
        x = builder.input([2, 2], DType.int32)
        builder.output(builder.op1("Abs", [x]))
        oracle = GradientCheckOracle([], bugs=BugConfig.all())
        case = oracle.run_case(builder.build())
        assert all(v.status == "ok" for v in case.verdicts)

    def test_value_search_backprop_unaffected_by_seeded_bugs(self):
        """The buggy VJPs activate only for callers passing a BugConfig;
        gradient-guided value search must keep its exact streams."""
        from repro.autodiff.backprop import backpropagate
        from repro.runtime.interpreter import Interpreter

        model = _tanh_model()
        inputs = {"x1": np.full((2, 3), 0.5, dtype=np.float32)}
        run = Interpreter(record_intermediates=True).run_detailed(model,
                                                                  inputs)
        seed = {model.outputs[0]: np.ones((2, 3))}
        plain = backpropagate(model, run.values, seed)
        with_all_bugs_registered = backpropagate(model, run.values, seed)
        np.testing.assert_array_equal(plain["x1"],
                                      with_all_bugs_registered["x1"])
        buggy = backpropagate(model, run.values, seed,
                              bugs=BugConfig.all(), triggered=[])
        assert not np.array_equal(plain["x1"], buggy["x1"])


class _EchoOracle(BaseOracle):
    """Minimal BaseOracle subclass recording what evaluate() received."""

    name = "echo"

    def evaluate(self, model, inputs, numerically_valid=None):
        self.seen_inputs = {name: np.array(value)
                            for name, value in inputs.items()}
        self.seen_validity = numerically_valid
        return []


class TestBaseOracleRunCase:
    """Regression tests for the run_case satellite fixes."""

    def test_rng_varies_random_inputs(self, mlp_model):
        oracle = _EchoOracle([], bugs=BugConfig.none())
        oracle.run_case(mlp_model, rng=np.random.default_rng(1))
        first = oracle.seen_inputs
        oracle.run_case(mlp_model, rng=np.random.default_rng(2))
        second = oracle.seen_inputs
        assert any(not np.array_equal(first[name], second[name])
                   for name in first)

    def test_default_rng_is_reproducible(self, mlp_model):
        oracle = _EchoOracle([], bugs=BugConfig.none())
        oracle.run_case(mlp_model)
        first = oracle.seen_inputs
        oracle.run_case(mlp_model)
        second = oracle.seen_inputs
        assert all(np.array_equal(first[name], second[name])
                   for name in first)

    def test_none_validity_preserved(self, mlp_model):
        """Unknown validity used to be coerced to False — recording every
        standalone case as numerically invalid."""
        oracle = _EchoOracle([], bugs=BugConfig.none())
        case = oracle.run_case(mlp_model)
        assert case.numerically_valid is None
        assert oracle.seen_validity is None

    def test_explicit_validity_forwarded(self, mlp_model):
        oracle = _EchoOracle([], bugs=BugConfig.none())
        assert oracle.run_case(mlp_model,
                               numerically_valid=True).numerically_valid \
            is True
        assert oracle.run_case(mlp_model,
                               numerically_valid=False).numerically_valid \
            is False

    def test_difftest_run_case_accepts_rng_too(self, mlp_model):
        bugs = BugConfig.none()
        tester = DifferentialTester(
            [GraphRTCompiler(CompileOptions(bugs=bugs))], bugs=bugs)
        case = tester.run_case(mlp_model, rng=np.random.default_rng(7))
        assert case.verdicts
