"""Cache-equivalence suite: the hot-path caches must be provably invisible.

Findings, checkpoints and Venn slices of a campaign with caching enabled
must be bit-identical to the same campaign with caching disabled, across
worker counts and through a kill/resume — while the artifact cache shows a
non-zero hit rate on a repeated-graph workload.  Plus unit coverage of the
cache keys themselves: pipeline tokens and ``BugConfig`` discriminate, a
seeded-bug compile never hits a clean-build entry.
"""

import copy
import json

import numpy as np
import pytest

from repro.compilers.base import CompileOptions, Compiler, create_compiler
from repro.compilers.bugs import BugConfig
from repro.compilers.pipeline import PipelineSpec, canonical_spec
from repro.core import cache
from repro.core.fuzzer import Fuzzer
from repro.core.parallel import ParallelCampaign, default_compiler_factory
from repro.errors import CompilerError
from repro.ops.shape_infer import infer_output_types
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.dtypes import DType
from repro.runtime.exporter import export_model
from repro.runtime.interpreter import Interpreter
from repro.testing import (build_mlp_model, campaign_signature,
                           tiny_campaign_config)

pytestmark = pytest.mark.campaign


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts cold and leaves the process-default switches on."""
    cache.reset()
    cache.configure(enabled=True, artifact=True, plan=True, prefix=True)
    yield
    cache.reset()
    cache.configure(enabled=True, artifact=True, plan=True, prefix=True)


def _config(enabled, **kwargs):
    import dataclasses

    return dataclasses.replace(tiny_campaign_config(**kwargs),
                               enable_cache=enabled)


# --------------------------------------------------------------------------- #
# Fingerprint / key discrimination
# --------------------------------------------------------------------------- #
class TestGraphFingerprint:
    def test_clone_shares_fingerprint(self):
        model = build_mlp_model()
        assert cache.graph_fingerprint(model) == \
            cache.graph_fingerprint(model.clone())

    def test_weight_bytes_change_fingerprint(self):
        model = build_mlp_model()
        other = model.clone()
        name = next(iter(other.initializers))
        other.initializers[name] = other.initializers[name] + 1
        assert cache.graph_fingerprint(model) != cache.graph_fingerprint(other)

    def test_attr_change_fingerprint(self):
        model = build_mlp_model()
        other = model.clone()
        for node in other.nodes:
            if node.attrs:
                key = next(iter(node.attrs))
                node.attrs[key] = node.attrs[key]
                node.attrs["__probe__"] = 1
                break
        assert cache.graph_fingerprint(model) != cache.graph_fingerprint(other)


class TestArtifactKey:
    def test_pipeline_content_discriminates_shared_names(self):
        # Two specs with the *same* display name but different pass content
        # (the pass-bisection pattern) must never share a cache entry.
        full = canonical_spec(2)
        trimmed = PipelineSpec(name=full.name, stages=tuple(
            (stage, names[:1]) for stage, names in full.stages))
        model = export_model(build_mlp_model())
        with_full = create_compiler("graphrt",
                                    CompileOptions(opt_level=2, pipeline=full))
        with_trimmed = create_compiler(
            "graphrt", CompileOptions(opt_level=2, pipeline=trimmed))
        assert cache.artifact_cache_key(with_full, model) != \
            cache.artifact_cache_key(with_trimmed, model)

    def test_bug_config_discriminates(self):
        model = export_model(build_mlp_model())
        seeded = create_compiler("graphrt",
                                 CompileOptions(bugs=BugConfig.all()))
        clean = create_compiler("graphrt",
                                CompileOptions(bugs=BugConfig.none()))
        assert cache.artifact_cache_key(seeded, model) != \
            cache.artifact_cache_key(clean, model)

    def test_seeded_compile_never_hits_clean_entry(self):
        model = export_model(build_mlp_model())
        clean = create_compiler("graphrt",
                                CompileOptions(bugs=BugConfig.none()))
        cache.compile_with_cache(clean, model)
        before = cache.stats_snapshot()
        seeded = create_compiler("graphrt",
                                 CompileOptions(bugs=BugConfig.all()))
        cache.compile_with_cache(seeded, model)
        delta = cache.stats_delta(before)
        assert delta["artifact"] == {"hits": 0, "misses": 1}

    def test_opt_level_and_compiler_discriminate(self):
        model = export_model(build_mlp_model())
        keys = {
            cache.artifact_cache_key(
                create_compiler(name, CompileOptions(opt_level=level)), model)
            for name in ("graphrt", "deepc")
            for level in (0, 2)
        }
        assert len(keys) == 4


class _CountingCompiler(Compiler):
    name = "counting"

    def __init__(self, options=None, fail=False):
        super().__init__(options or CompileOptions())
        self.calls = 0
        self.fail = fail

    def compile_model(self, model):
        self.calls += 1
        if self.fail:
            raise CompilerError("deterministic failure [graphrt-probe-bug]")
        return object.__new__(_FakeCompiled)


class _FakeCompiled:
    pass


class TestCompileWithCache:
    def test_hit_returns_same_artifact_without_recompiling(self):
        model = export_model(build_mlp_model())
        compiler = _CountingCompiler()
        first = cache.compile_with_cache(compiler, model)
        second = cache.compile_with_cache(compiler, model)
        assert first is second
        assert compiler.calls == 1
        assert cache.stats_snapshot()["artifact"] == {"hits": 1, "misses": 1}

    def test_deterministic_failures_are_cached_and_reraised(self):
        model = export_model(build_mlp_model())
        compiler = _CountingCompiler(fail=True)
        with pytest.raises(CompilerError) as first:
            cache.compile_with_cache(compiler, model)
        with pytest.raises(CompilerError) as second:
            cache.compile_with_cache(compiler, model)
        assert compiler.calls == 1
        assert str(first.value) == str(second.value)

    def test_disabled_cache_always_recompiles(self):
        cache.configure(artifact=False)
        model = export_model(build_mlp_model())
        compiler = _CountingCompiler()
        cache.compile_with_cache(compiler, model)
        cache.compile_with_cache(compiler, model)
        assert compiler.calls == 2


# --------------------------------------------------------------------------- #
# Shape-infer memo and execution plans
# --------------------------------------------------------------------------- #
class TestShapeInferMemo:
    def test_memoized_result_equals_fresh(self):
        node = Node("Relu", "r", ["x"], ["y"])
        types = [TensorType((3, 4), DType.float32)]
        first = infer_output_types(node, types)
        before = cache.stats_snapshot()
        second = infer_output_types(node, types)
        assert first == second
        assert cache.stats_delta(before)["shape_infer"]["hits"] == 1

    def test_bool_and_int_attrs_do_not_collide(self):
        # True == 1 and hash(True) == hash(1); the memo key must still keep
        # them apart (a rule could isinstance-dispatch on the attr).
        node_bool = Node("Relu", "r", ["x"], ["y"], attrs={"flag": True})
        node_int = Node("Relu", "r", ["x"], ["y"], attrs={"flag": 1})
        types = [TensorType((2,), DType.float32)]
        infer_output_types(node_bool, types)
        before = cache.stats_snapshot()
        infer_output_types(node_int, types)
        assert cache.stats_delta(before)["shape_infer"]["misses"] == 1

    def test_hits_return_fresh_lists(self):
        node = Node("Relu", "r", ["x"], ["y"])
        types = [TensorType((3,), DType.float32)]
        first = infer_output_types(node, types)
        second = infer_output_types(node, types)
        assert first is not second
        first.append("sentinel")
        assert infer_output_types(node, types) == second


class TestExecutionPlanStaleness:
    def test_structural_mutation_invalidates_plan(self):
        from repro.graph.model import Model

        model = Model("grow")
        model.add_input("x", TensorType((4,), DType.float32))
        model.add_node(Node("Relu", "r", ["x"], ["a"]),
                       [TensorType((4,), DType.float32)])
        model.mark_output("a")
        interp = Interpreter(record_intermediates=False)
        x = np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32)
        first = interp.run_detailed(model, {"x": x})
        np.testing.assert_array_equal(first.outputs["a"],
                                      np.maximum(x, 0.0))
        model.add_node(Node("Neg", "n", ["a"], ["b"]),
                       [TensorType((4,), DType.float32)])
        model.mark_output("b")
        second = interp.run_detailed(model, {"x": x})
        np.testing.assert_array_equal(second.outputs["b"],
                                      -np.maximum(x, 0.0))

    def test_initializer_value_swap_reuses_plan(self):
        # The value-search loop swaps initializer *values* in place; the
        # plan must be reused (a hit) yet read the fresh weights.
        from repro.graph.model import Model

        model = Model("swap")
        model.add_input("x", TensorType((2,), DType.float32))
        model.add_initializer("w", np.array([1.0, 1.0], dtype=np.float32))
        model.add_node(Node("Add", "s", ["x", "w"], ["y"]),
                       [TensorType((2,), DType.float32)])
        model.mark_output("y")
        interp = Interpreter(record_intermediates=False)
        x = np.array([1.0, 2.0], dtype=np.float32)
        interp.run_detailed(model, {"x": x})
        model.initializers["w"] = np.array([10.0, 20.0], dtype=np.float32)
        before = cache.stats_snapshot()
        run = interp.run_detailed(model, {"x": x})
        np.testing.assert_array_equal(run.outputs["y"],
                                      np.array([11.0, 22.0]))
        assert cache.stats_delta(before)["exec_plan"]["hits"] == 1


# --------------------------------------------------------------------------- #
# Campaign-level equivalence
# --------------------------------------------------------------------------- #
class TestSerialEquivalence:
    def test_fuzzer_findings_identical_with_and_without_cache(self):
        signatures = []
        for enabled in (True, False):
            cache.reset()
            fuzzer = Fuzzer(default_compiler_factory(BugConfig.all()),
                            _config(enabled, iterations=6, seed=11))
            signatures.append(campaign_signature(fuzzer.run()))
        assert signatures[0] == signatures[1]

    def test_cache_stats_reported_only_when_enabled(self):
        cache.reset()
        on = Fuzzer(default_compiler_factory(BugConfig.all()),
                    _config(True, iterations=3, seed=5)).run()
        assert on.cache_stats  # at least exec_plan/shape_infer activity
        cache.reset()
        off = Fuzzer(default_compiler_factory(BugConfig.all()),
                     _config(False, iterations=3, seed=5)).run()
        assert off.cache_stats == {}

    def test_gradcheck_campaign_identical_with_and_without_cache(self):
        # With caching on, gradcheck probes run through the batched compiled
        # plan; off, through the sequential legacy loop.  Findings must not
        # be able to tell.
        signatures = []
        for enabled in (True, False):
            cache.reset()
            fuzzer = Fuzzer(default_compiler_factory(BugConfig.all()),
                            _config(enabled, iterations=5, seed=19,
                                    oracle="gradcheck"))
            signatures.append(campaign_signature(fuzzer.run()))
        assert signatures[0] == signatures[1]

    def test_plan_and_prefix_stages_appear_in_campaign_stats(self):
        cache.reset()
        result = Fuzzer(default_compiler_factory(BugConfig.all()),
                        _config(True, iterations=4, seed=7)).run()
        assert result.cache_stats.get("plan", {}).get("misses", 0) > 0
        prefix = result.cache_stats.get("prefix", {})
        assert prefix.get("hits", 0) + prefix.get("misses", 0) > 0


class TestParallelEquivalence:
    @pytest.mark.smoke
    def test_bit_identical_across_cache_and_worker_counts(self):
        signatures = set()
        for enabled in (True, False):
            for workers in (1, 2):
                cache.reset()
                result = ParallelCampaign(
                    config=_config(enabled, iterations=8, seed=23),
                    n_workers=workers, n_shards=2).run()
                signatures.add(campaign_signature(result))
        assert len(signatures) == 1

    @pytest.mark.smoke
    def test_artifact_hit_rate_positive_on_repeated_graph_workload(self):
        # The oracle axis re-judges identical shard seed streams per oracle:
        # every cell beyond the first re-compiles graphs the first cell
        # already built — the repeated-graph workload of the acceptance
        # criteria.  One worker keeps all cells in one process/cache.
        result = ParallelCampaign(
            config=_config(True, iterations=6, seed=23),
            n_workers=1, n_shards=1,
            oracles=["difftest", "crash"]).run()
        artifact = result.cache_stats.get("artifact", {})
        assert artifact.get("hits", 0) > 0

    @pytest.mark.smoke
    def test_prefix_hit_rate_positive_on_repeated_graph_workload(self):
        # The prefix cache keys on structure + content, not object identity:
        # replaying the same seed stream through a warm process cache
        # regenerates every model from scratch (fresh Model objects, plan
        # misses) yet resolves the reference runs out of the value cache.
        config = _config(True, iterations=6, seed=23)
        ParallelCampaign(config=config, n_workers=1, n_shards=1).run()
        result = ParallelCampaign(config=config, n_workers=1,
                                  n_shards=1).run()
        assert result.cache_stats.get("prefix", {}).get("hits", 0) > 0

    @pytest.mark.smoke
    def test_gradcheck_oracle_bit_identical_across_workers_and_cache(self):
        # The batched-probe path must be invisible under parallel folding
        # too, not just in the serial fuzzer.
        signatures = set()
        for enabled in (True, False):
            for workers in (1, 2):
                cache.reset()
                result = ParallelCampaign(
                    config=_config(enabled, iterations=6, seed=37),
                    n_workers=workers, n_shards=2,
                    oracles=["difftest", "gradcheck"]).run()
                signatures.add(campaign_signature(result))
        assert len(signatures) == 1


def _normalize_checkpoint(payload):
    """Zero out wall-clock fields (they differ run-to-run regardless of
    caching) so checkpoint comparison checks content, not timing."""
    clone = copy.deepcopy(payload)
    for entry in clone.get("cells", {}).values():
        entry["time_used"] = 0.0
        result = entry.get("result")
        if result:
            result["elapsed"] = 0.0
            for sample in result.get("timeline", []):
                sample["elapsed"] = 0.0
            for sample in result.get("coverage_timeline", []):
                sample["elapsed"] = 0.0
    return clone


class TestCheckpointInvisibility:
    @pytest.mark.smoke
    def test_checkpoints_identical_across_cache_settings(self, tmp_path):
        payloads = []
        for enabled in (True, False):
            cache.reset()
            path = tmp_path / f"cache_{enabled}.ckpt.json"
            ParallelCampaign(config=_config(enabled, iterations=6, seed=31),
                             n_workers=1, n_shards=2,
                             checkpoint_path=str(path)).run()
            payloads.append(json.loads(path.read_text()))
        assert _normalize_checkpoint(payloads[0]) == \
            _normalize_checkpoint(payloads[1])

    def test_checkpoint_carries_no_cache_stats(self, tmp_path):
        path = tmp_path / "c.ckpt.json"
        ParallelCampaign(config=_config(True, iterations=4, seed=13),
                         n_workers=1, n_shards=1,
                         checkpoint_path=str(path)).run()
        assert "cache_stats" not in path.read_text()

    def test_resume_across_cache_settings_is_legal(self, tmp_path):
        # The cache knob is invisible, so it is deliberately outside the
        # checkpoint fingerprint: a cache-on checkpoint resumes cache-off.
        path = tmp_path / "cross.ckpt.json"
        first = ParallelCampaign(config=_config(True, iterations=5, seed=17),
                                 n_workers=1, n_shards=1,
                                 checkpoint_path=str(path)).run()
        cache.reset()
        resumed = ParallelCampaign(config=_config(False, iterations=5, seed=17),
                                   n_workers=1, n_shards=1,
                                   checkpoint_path=str(path)).run()
        assert campaign_signature(resumed) == campaign_signature(first)


class TestKillResume:
    @pytest.mark.smoke
    def test_kill_and_resume_keeps_findings_and_stats_consistent(
            self, tmp_path, monkeypatch):
        from repro.errors import ReproError

        config = _config(True, iterations=8, seed=41)
        baseline = ParallelCampaign(config=config, n_workers=1,
                                    n_shards=1).run()
        cache.reset()

        path = tmp_path / "killed.ckpt.json"
        original_fold = ParallelCampaign._fold_iteration
        folds = {"count": 0}

        def dying_fold(self, states, cell_index, iteration, partial):
            folds["count"] += 1
            if folds["count"] > 3:
                raise RuntimeError("simulated coordinator death")
            return original_fold(self, states, cell_index, iteration, partial)

        monkeypatch.setattr(ParallelCampaign, "_fold_iteration", dying_fold)
        with pytest.raises(ReproError, match="simulated coordinator death"):
            ParallelCampaign(config=config, n_workers=1, n_shards=1,
                             checkpoint_path=str(path)).run()
        monkeypatch.setattr(ParallelCampaign, "_fold_iteration", original_fold)

        cache.reset()
        resumed = ParallelCampaign(config=config, n_workers=1, n_shards=1,
                                   checkpoint_path=str(path)).run()
        assert campaign_signature(resumed) == campaign_signature(baseline)
        # Stats are telemetry, not findings: the resumed run reports only
        # the re-executed portion (restored iterations contribute nothing),
        # so every stage's counters stay at or below the uninterrupted run's.
        for stage, counters in resumed.cache_stats.items():
            full = baseline.cache_stats.get(stage, {"hits": 0, "misses": 0})
            assert counters["hits"] + counters["misses"] <= \
                full["hits"] + full["misses"]


class TestCoverageInteraction:
    def test_coverage_run_disables_artifact_layer_only(self):
        from repro.compilers.coverage import CoverageFeedback

        fuzzer = Fuzzer(default_compiler_factory(BugConfig.all()),
                        _config(True, iterations=2, seed=3))
        fuzzer.run(coverage=CoverageFeedback(systems=["graphrt", "deepc"]))
        assert cache.get_cache().enabled is True
        assert cache.get_cache().artifact_enabled is False
        # Compiled plans and the prefix cache stay on under tracing: the
        # tracer's scope excludes repro/runtime, so they cannot perturb arcs.
        assert cache.get_cache().plan_enabled is True
        assert cache.get_cache().prefix_enabled is True

    def test_traced_arcs_identical_with_and_without_cache(self):
        # Satellite fix pin: routing traced runs through the compiled plan
        # must leave the observed arc set bit-identical — coverage-guided
        # dedup would otherwise diverge between cache settings.
        from repro.compilers.coverage import CoverageFeedback

        arc_sets = []
        for enabled in (True, False):
            cache.reset()
            feedback = CoverageFeedback(systems=["graphrt", "deepc"])
            Fuzzer(default_compiler_factory(BugConfig.all()),
                   _config(enabled, iterations=3, seed=9)).run(
                       coverage=feedback)
            arc_sets.append(frozenset(feedback._seen))
        assert arc_sets[0] == arc_sets[1]
