"""Oracle-axis matrix campaigns: checkpoint v5, per-oracle Venn slicing.

The acceptance scenario lives in
``TestOracleAxisCampaign::test_oracle_only_bugs_sliced_per_oracle``: one
campaign races ``difftest``/``perf``/``gradcheck`` over identical shard
seed streams, and the per-oracle Venn slice shows the seeded repack bug
detected *only* by ``perf`` and the seeded wrong-VJP bugs *only* by
``gradcheck``.  Plus: checkpoint v5 kill/resume for oracle-axis campaigns,
loud rejection of v4 checkpoints, and the fingerprint keeping
differently-shaped oracle matrices from cross-loading cells.
"""

import dataclasses
import json

import pytest

from repro.compilers.bugs import BugConfig
from repro.core.fuzzer import CampaignResult, CellOutcome, FuzzerConfig
from repro.core.parallel import (
    CHECKPOINT_FORMAT_VERSION,
    MatrixCell,
    ParallelCampaign,
    build_matrix,
    run_parallel_campaign,
)
from repro.errors import ReproError
from repro.experiments.venn import campaign_cell_sets
from repro.testing import campaign_signature, tiny_campaign_config

ORACLES = ["difftest", "perf", "gradcheck"]

#: Bugs visible to exactly one oracle class each (plus one difftest bug).
ORACLE_STUDY_BUGS = BugConfig.only(
    "graphrt-matmul-repack-small",       # perf-only
    "autodiff-tanh-grad-linear",         # gradcheck-only
    "autodiff-sigmoid-grad-unscaled",    # gradcheck-only
    "deepc-import-scalar-reduce",        # difftest-visible (crash)
)


def _study_config(iterations=10, seed=29):
    return dataclasses.replace(
        tiny_campaign_config(iterations=iterations, seed=seed, n_nodes=6),
        bugs=ORACLE_STUDY_BUGS)


class TestBuildMatrixOracleAxis:
    def test_oracle_axis_crosses_with_shards(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8), 2,
                             oracles=["difftest", "perf"])
        assert len(tasks) == 4
        keys = {task.cell.key for task in tasks}
        assert "shard0|<default>|O?|oracle:difftest" in keys
        assert "shard1|<default>|O?|oracle:perf" in keys
        # every cell's shard config rebuilds the right oracle by name
        assert {task.config.oracle for task in tasks} == {"difftest", "perf"}

    def test_oracle_axis_shares_shard_seed_streams(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=8, seed=3), 2,
                             oracles=ORACLES)
        by_shard = {}
        for task in tasks:
            by_shard.setdefault(task.cell.shard, set()).add(
                (task.config.seed, task.config.max_iterations,
                 task.config.strategy))
        assert all(len(variants) == 1 for variants in by_shard.values())

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="nosuch"):
            build_matrix(FuzzerConfig(), 1, oracles=["nosuch"])

    def test_empty_oracles_rejected(self):
        with pytest.raises(ValueError):
            build_matrix(FuzzerConfig(), 1, oracles=[])

    def test_duplicate_oracles_deduped(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 1,
                             oracles=["perf", "perf"])
        assert len(tasks) == 1

    def test_no_axis_keeps_pre_v5_cell_keys(self):
        """Campaigns without an oracle axis keep their historical keys —
        difftest-only campaigns stay bit-identical to the previous
        engine."""
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 2)
        assert [task.cell.key for task in tasks] == \
            ["shard0|<default>|O?", "shard1|<default>|O?"]
        assert MatrixCell(shard=0).key == "shard0|<default>|O?"

    def test_oracle_axis_composes_with_generator_axis(self):
        tasks = build_matrix(FuzzerConfig(max_iterations=4), 1,
                             generators=["nnsmith", "targeted"],
                             oracles=["difftest", "crash"])
        keys = {task.cell.key for task in tasks}
        assert len(tasks) == 4
        assert "shard0|<default>|O?|targeted|oracle:crash" in keys
        for task in tasks:
            assert task.config.strategy == task.cell.generator
            assert task.config.oracle == task.cell.oracle


@pytest.mark.campaign
class TestOracleAxisCampaign:
    def test_oracle_only_bugs_sliced_per_oracle(self):
        """The acceptance scenario: per-oracle Venn slicing over shared
        streams shows each new oracle finding a bug class no other oracle
        can see."""
        result = run_parallel_campaign(config=_study_config(), n_workers=1,
                                       n_shards=2, oracles=ORACLES)
        # every oracle judged the full budget over identical streams
        assert result.iterations == 10 * len(ORACLES)
        sets = campaign_cell_sets(result, by="oracle")
        assert set(sets) == set(ORACLES)
        assert "graphrt-matmul-repack-small" in sets["perf"]
        assert "graphrt-matmul-repack-small" not in sets["difftest"]
        assert "graphrt-matmul-repack-small" not in sets["gradcheck"]
        gradcheck_only = sets["gradcheck"] - sets["difftest"] - sets["perf"]
        assert gradcheck_only & {"autodiff-tanh-grad-linear",
                                 "autodiff-sigmoid-grad-unscaled"}

    def test_oracle_only_bugs_stay_exclusive_under_all_bugs(self):
        """Regression: oracle-only bug *triggers* are recorded during every
        oracle's compile/backward, so a failing difftest verdict on the
        same model used to credit perf/gradient bugs to difftest via
        ride-along trigger sets.  With the full bug population enabled,
        the per-oracle Venn must still keep them exclusive."""
        config = dataclasses.replace(
            tiny_campaign_config(iterations=12, seed=29, n_nodes=6))
        result = run_parallel_campaign(config=config, n_workers=1,
                                       n_shards=2, oracles=ORACLES)
        sets = campaign_cell_sets(result, by="oracle")
        assert "graphrt-matmul-repack-small" not in sets["difftest"]
        assert "graphrt-matmul-repack-small" not in sets["gradcheck"]
        assert "graphrt-matmul-repack-small" in sets["perf"]
        assert not any(bug.startswith("autodiff-")
                       for bug in sets["difftest"] | sets["perf"])
        assert any(bug.startswith("autodiff-") for bug in sets["gradcheck"])

    def test_oracle_axis_equivalent_across_engines(self):
        config = _study_config(iterations=6)
        solo = run_parallel_campaign(config=config, n_workers=1, n_shards=2,
                                     oracles=["difftest", "gradcheck"])
        pool = run_parallel_campaign(config=config, n_workers=2, n_shards=2,
                                     oracles=["difftest", "gradcheck"])
        assert campaign_signature(solo) == campaign_signature(pool)

    def test_gradcheck_comparison_routes_through_engine(self):
        from repro.experiments import run_gradcheck_comparison

        result = run_gradcheck_comparison(max_iterations=10, n_nodes=6,
                                          seed=29, bugs=ORACLE_STUDY_BUGS)
        assert result.iterations == 10 * 2
        assert result.gradcheck_only() & {"autodiff-tanh-grad-linear",
                                          "autodiff-sigmoid-grad-unscaled"}


class _InterruptAfter(ParallelCampaign):
    """Campaign that dies (after checkpointing) at the Nth folded iteration."""

    def __init__(self, interrupt_after, **kwargs):
        super().__init__(**kwargs)
        self._folds_left = interrupt_after

    def _fold_iteration(self, states, cell_index, iteration, partial):
        super()._fold_iteration(states, cell_index, iteration, partial)
        self._folds_left -= 1
        if self._folds_left <= 0:
            raise KeyboardInterrupt("simulated mid-campaign kill")


class _FoldCounter(ParallelCampaign):
    """Campaign that records how many iterations it actually executes."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.folds = {}

    def _fold_iteration(self, states, cell_index, iteration, partial):
        key = states[cell_index].task.cell.key
        self.folds[key] = self.folds.get(key, 0) + 1
        super()._fold_iteration(states, cell_index, iteration, partial)


@pytest.mark.campaign
class TestCheckpointV5:
    def test_killed_oracle_axis_campaign_resumes_mid_cell(self, tmp_path):
        # difftest + gradcheck: both deterministic, so the resumed result
        # must equal the uninterrupted one bit-for-bit (perf verdicts are
        # wall-time-dependent by nature and are excluded from signature
        # comparisons).
        config = _study_config(iterations=6)
        axis = dict(oracles=["difftest", "gradcheck"], n_shards=2)
        budget_per_cell = 3

        reference = run_parallel_campaign(config=config, n_workers=1, **axis)

        path = str(tmp_path / "oracle.ckpt.json")
        interrupted = _InterruptAfter(interrupt_after=5, config=config,
                                      n_workers=1, checkpoint_path=path,
                                      **axis)
        with pytest.raises((KeyboardInterrupt, ReproError)):
            interrupted.run()

        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["format_version"] == CHECKPOINT_FORMAT_VERSION == 7
        completed_before = {
            key: sum(end - start + 1 for start, end in entry["completed"])
            for key, entry in payload["cells"].items()
        }
        assert sum(completed_before.values()) == 5
        assert any(0 < count < budget_per_cell
                   for count in completed_before.values())
        # per-oracle cells keep their oracle in the checkpoint cell keys,
        # so differently-judged cells can never collide
        assert all("|oracle:" in key for key in payload["cells"])
        assert any(key.endswith("|oracle:difftest")
                   for key in payload["cells"])

        resumed = _FoldCounter(config=config, n_workers=1,
                               checkpoint_path=path, **axis)
        result = resumed.run()
        assert sum(resumed.folds.values()) == \
            4 * budget_per_cell - 5  # only the missing iterations re-ran
        assert campaign_signature(result) == campaign_signature(reference)

    def test_v4_checkpoints_are_rejected_loudly(self, tmp_path):
        config = tiny_campaign_config(iterations=4, seed=3)
        path = tmp_path / "old.ckpt.json"
        path.write_text(json.dumps({"format_version": 4, "cells": {}}),
                        encoding="utf-8")
        with pytest.raises(ReproError, match="format_version 4"):
            run_parallel_campaign(config=config, n_workers=1,
                                  checkpoint_path=str(path))

    def test_fingerprint_rejects_differently_shaped_oracle_matrix(
            self, tmp_path):
        """A checkpoint written by a (difftest, perf) campaign must never
        cross-load into a (difftest,)-axis campaign: the fingerprint
        differs, so the second campaign starts from scratch."""
        config = _study_config(iterations=4)
        path = str(tmp_path / "axis.ckpt.json")
        run_parallel_campaign(config=config, n_workers=1, n_shards=2,
                              oracles=["difftest", "perf"],
                              checkpoint_path=path)
        rerun = _FoldCounter(config=config, n_workers=1, n_shards=2,
                             oracles=["difftest"], checkpoint_path=path)
        rerun.run()
        # nothing restored: the full (smaller) campaign re-executed
        assert sum(rerun.folds.values()) == 4

    def test_same_oracle_axis_restores_fully(self, tmp_path):
        config = _study_config(iterations=4)
        path = str(tmp_path / "axis.ckpt.json")
        axis = dict(oracles=["difftest", "perf"], n_shards=2)
        first = run_parallel_campaign(config=config, n_workers=1,
                                      checkpoint_path=path, **axis)
        again = _FoldCounter(config=config, n_workers=1,
                             checkpoint_path=path, **axis)
        result = again.run()
        assert again.folds == {}
        assert campaign_signature(result) == campaign_signature(first)


class TestOracleVennHelpers:
    def _synthetic(self):
        result = CampaignResult()
        for shard, oracle, bugs in [
            (0, "difftest", {"shared-x", "crash-a"}),
            (1, "difftest", set()),
            (0, "perf", {"shared-x", "perf-only"}),
            (0, "gradcheck", {"grad-only"}),
        ]:
            cell = CellOutcome(shard=shard, oracle=oracle, iterations=3,
                               seeded_bugs_found=set(bugs))
            result.cells[cell.key()] = cell
        return result

    def test_group_by_oracle(self):
        sets = campaign_cell_sets(self._synthetic(), by="oracle")
        assert sets == {"difftest": {"shared-x", "crash-a"},
                        "perf": {"shared-x", "perf-only"},
                        "gradcheck": {"grad-only"}}

    def test_cells_without_oracle_group_as_default(self):
        result = CampaignResult()
        cell = CellOutcome(shard=0, iterations=1,
                           seeded_bugs_found={"bug-a"})
        result.cells[cell.key()] = cell
        assert campaign_cell_sets(result, by="oracle") == \
            {"<default>": {"bug-a"}}

    def test_outcome_key_roundtrips_oracle(self):
        cell = CellOutcome(shard=2, compilers=("graphrt",), opt_level=2,
                           generator="nnsmith", oracle="perf")
        assert cell.key() == "shard2|graphrt|O2|nnsmith|oracle:perf"
        assert cell.copy().key() == cell.key()
