"""Tests for feature-derived fallback motifs in the targeted strategy."""

from pathlib import Path

import pytest

from repro.compilers.bugs import all_bugs
from repro.core.fuzzer import FuzzerConfig
from repro.core.strategy import build_strategy
from repro.core.targeted import (
    MOTIF_FEATURES,
    MOTIFS,
    derive_motif,
    fallback_motifs,
    motif_for_bug,
)
from repro.graph.validate import validation_errors

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def _build(motif, seed=1234):
    import random

    from repro.graph.builder import GraphBuilder

    builder = GraphBuilder(f"targeted_{motif.__name__[6:]}")
    value = motif(builder, random.Random(seed))
    builder.output(value)
    return builder.build()


class TestMotifFeatureMap:
    def test_every_hand_written_motif_declares_features(self):
        assert set(MOTIF_FEATURES) == {motif.__name__ for motif in MOTIFS}

    def test_every_corpus_bug_maps_to_some_motif(self):
        corpus_bugs = [path.stem for path in sorted(CORPUS_DIR.glob("*.json"))]
        assert corpus_bugs, "empty regression corpus"
        for bug_id in corpus_bugs:
            motif = motif_for_bug(bug_id)
            model = _build(motif)
            assert validation_errors(model) == [], bug_id

    def test_every_registered_bug_maps_to_some_motif(self):
        for spec in all_bugs():
            assert motif_for_bug(spec.bug_id) is not None

    def test_covered_bugs_reuse_hand_written_motifs(self):
        # integer round-trip requirements are covered by the hand-written
        # int motif, so no auto-derivation happens for them
        covered = [spec for spec in all_bugs()
                   if any(MOTIF_FEATURES[m.__name__] >= spec.required_features
                          for m in MOTIFS)]
        assert covered
        for spec in covered:
            assert not motif_for_bug(spec.bug_id).__name__.startswith(
                "motif_auto_")


class TestDerivedMotifs:
    def test_fallbacks_are_deduplicated_by_feature_set(self):
        fallbacks = fallback_motifs()
        names = [motif.__name__ for motif in fallbacks]
        assert len(names) == len(set(names))
        assert all(name.startswith("motif_auto_") for name in names)

    @pytest.mark.parametrize("seed", [1, 2, 99])
    def test_derived_motifs_build_valid_models(self, seed):
        for spec in all_bugs():
            motif = derive_motif(spec.required_features)
            model = _build(motif, seed=seed)
            assert validation_errors(model) == [], spec.bug_id

    def test_derived_motif_honors_dtype_features(self):
        from repro.compilers.bugs import FEATURE_INT_DTYPE, FEATURE_MULTI_OP
        from repro.dtypes import DType

        motif = derive_motif(frozenset({FEATURE_INT_DTYPE,
                                        FEATURE_MULTI_OP}))
        model = _build(motif)
        assert any(model.type_of(name).dtype == DType.int32
                   for name in model.inputs)


class TestStrategyRotation:
    def test_rotation_extends_hand_written_library(self):
        strategy = build_strategy("targeted", FuzzerConfig())
        assert len(strategy._rotation) == len(MOTIFS) + len(fallback_motifs())
        # hand-written motifs come first: the first len(MOTIFS) iterations
        # keep their historical structures
        names = {strategy.generate(1000 + i, i).model.name
                 for i in range(1, len(MOTIFS) + 1)}
        assert len(names) == len(MOTIFS)

    def test_fallback_iterations_generate_valid_models(self):
        strategy = build_strategy("targeted", FuzzerConfig())
        total = len(strategy._rotation)
        for iteration in range(len(MOTIFS) + 1, total + 1):
            generated = strategy.generate(5000 + iteration, iteration)
            assert generated.model.name.startswith("targeted_auto_")
            assert validation_errors(generated.model) == []
