"""Operator kernels vs shape inference: behaviour and mutual consistency.

``OP_CASES`` enumerates, for (almost) every operator kind, one or more
concrete configurations.  Each case is exercised twice:

* the kernel must produce outputs whose shape/dtype match shape inference
  (this is the central invariant that makes generated models executable);
* selected cases additionally check values against a hand-computed result.
"""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import ShapeInferenceError
from repro.graph.node import Node
from repro.graph.tensor_type import TensorType
from repro.ops.registry import all_ops, op_info
from repro.ops.semantics import execute_node, has_kernel
from repro.ops.shape_infer import infer_output_types


def _arr(shape, dtype=np.float32, low=0.5, high=2.5, seed=0):
    rng = np.random.default_rng(seed)
    if np.dtype(dtype).kind == "f":
        return rng.uniform(low, high, size=shape).astype(dtype)
    if np.dtype(dtype).kind == "b":
        return rng.integers(0, 2, size=shape).astype(bool)
    return rng.integers(1, 5, size=shape).astype(dtype)


# (op, attrs, list of input arrays)
OP_CASES = [
    # elementwise unary
    ("Relu", {}, [_arr((2, 3)) - 1.5]),
    ("LeakyRelu", {"alpha": 0.1}, [_arr((2, 3)) - 1.5]),
    ("Sigmoid", {}, [_arr((4,))]),
    ("Tanh", {}, [_arr((4,))]),
    ("Abs", {}, [_arr((2, 2)) - 1.5]),
    ("Neg", {}, [_arr((2, 2))]),
    ("Sign", {}, [_arr((5,)) - 1.5]),
    ("Exp", {}, [_arr((3,))]),
    ("Log", {}, [_arr((3,))]),
    ("Log2", {}, [_arr((3,))]),
    ("Sqrt", {}, [_arr((3,))]),
    ("Sin", {}, [_arr((3,))]),
    ("Cos", {}, [_arr((3,))]),
    ("Asin", {}, [_arr((3,), low=-0.9, high=0.9)]),
    ("Acos", {}, [_arr((3,), low=-0.9, high=0.9)]),
    ("Atan", {}, [_arr((3,))]),
    ("Floor", {}, [_arr((3,)) * 3]),
    ("Ceil", {}, [_arr((3,)) * 3]),
    ("Round", {}, [_arr((3,)) * 3]),
    ("Erf", {}, [_arr((3,))]),
    ("Softplus", {}, [_arr((3,))]),
    ("Reciprocal", {}, [_arr((3,))]),
    ("Identity", {}, [_arr((2, 3))]),
    ("Dropout", {"ratio": 0.5}, [_arr((2, 3))]),
    ("Clip", {"min": 0.0, "max": 1.0}, [_arr((2, 3)) - 1.0]),
    ("Softmax", {"axis": 1}, [_arr((2, 5))]),
    ("Not", {}, [_arr((4,), dtype=np.bool_)]),
    ("Cast", {"to": "int64"}, [_arr((2, 3)) * 4]),
    ("Cast", {"to": "float64"}, [_arr((2, 3), dtype=np.int32)]),
    # binary broadcasting
    ("Add", {}, [_arr((2, 3)), _arr((1, 3), seed=1)]),
    ("Sub", {}, [_arr((2, 3)), _arr((3,), seed=1)]),
    ("Mul", {}, [_arr((4, 1)), _arr((1, 5), seed=1)]),
    ("Div", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("Div", {}, [_arr((2, 3), dtype=np.int32), _arr((2, 3), dtype=np.int32, seed=1)]),
    ("Pow", {}, [_arr((2, 2)), _arr((2, 2), seed=1)]),
    ("Max", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("Min", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("Mod", {}, [_arr((2, 3)) * 7, _arr((2, 3), seed=1) * 3]),
    ("Equal", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("Greater", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("Less", {}, [_arr((2, 3)), _arr((1, 3), seed=1)]),
    ("GreaterOrEqual", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("LessOrEqual", {}, [_arr((2, 3)), _arr((2, 3), seed=1)]),
    ("And", {}, [_arr((4,), dtype=np.bool_), _arr((4,), dtype=np.bool_, seed=1)]),
    ("Or", {}, [_arr((4,), dtype=np.bool_), _arr((4,), dtype=np.bool_, seed=1)]),
    ("Xor", {}, [_arr((4,), dtype=np.bool_), _arr((4,), dtype=np.bool_, seed=1)]),
    ("Where", {}, [_arr((2, 3), dtype=np.bool_), _arr((2, 3)), _arr((1, 3), seed=1)]),
    # matrix / nn
    ("MatMul", {}, [_arr((3, 4)), _arr((4, 5), seed=1)]),
    ("MatMul", {}, [_arr((4,)), _arr((4, 5), seed=1)]),
    ("MatMul", {}, [_arr((3, 4)), _arr((4,), seed=1)]),
    ("MatMul", {}, [_arr((4,)), _arr((4,), seed=1)]),
    ("Gemm", {}, [_arr((3, 4)), _arr((4, 5), seed=1), _arr((5,), seed=2)]),
    ("Conv2d", {"stride": 1, "padding": 1}, [_arr((1, 3, 6, 6)), _arr((4, 3, 3, 3), seed=1)]),
    ("Conv2d", {"stride": 2, "padding": 0, "dilation": 2},
     [_arr((1, 2, 9, 9)), _arr((3, 2, 2, 2), seed=1)]),
    ("Conv2d", {"stride": 1, "padding": 0},
     [_arr((2, 2, 5, 5)), _arr((2, 2, 1, 1), seed=1), _arr((2,), seed=2)]),
    ("MaxPool2d", {"kh": 2, "kw": 2, "stride": 2, "padding": 0}, [_arr((1, 2, 6, 6))]),
    ("AvgPool2d", {"kh": 3, "kw": 3, "stride": 1, "padding": 1}, [_arr((1, 2, 5, 5))]),
    ("GlobalAvgPool2d", {}, [_arr((2, 3, 4, 4))]),
    ("BatchNorm", {"epsilon": 1e-5},
     [_arr((2, 3, 4, 4)), _arr((3,), seed=1), _arr((3,), seed=2),
      _arr((3,), seed=3), _arr((3,), seed=4)]),
    ("Resize2d", {"scale_h": 2, "scale_w": 3}, [_arr((1, 2, 3, 3))]),
    # data movement
    ("Reshape", {"shape": [3, 8]}, [_arr((2, 3, 4))]),
    ("Reshape", {"shape": [4, -1]}, [_arr((2, 3, 4))]),
    ("Flatten", {"axis": 2}, [_arr((2, 3, 4, 5))]),
    ("Transpose", {"perm": [1, 0, 2]}, [_arr((2, 3, 4))]),
    ("Transpose", {}, [_arr((2, 3))]),
    ("Squeeze", {"axes": [1]}, [_arr((2, 1, 4))]),
    ("Squeeze", {}, [_arr((1, 2, 1, 4))]),
    ("Unsqueeze", {"axes": [0, 2]}, [_arr((3, 4))]),
    ("Slice", {"starts": [1], "ends": [4], "axes": [1], "steps": [2]}, [_arr((2, 6))]),
    ("Slice", {"starts": [0, 1], "ends": [2, 5], "axes": [0, 1], "steps": [1, 1]},
     [_arr((3, 6))]),
    ("Pad", {"pads": [1, 2, 1, 2], "mode": "constant", "value": 0.0}, [_arr((2, 3))]),
    ("Pad", {"pads": [0, -1, 0, 2], "mode": "constant", "value": 0.0}, [_arr((2, 4))]),
    ("Pad", {"pads": [4, -1, -4, 8], "mode": "constant", "value": 0.0}, [_arr((1, 1))]),
    ("Pad", {"pads": [0, 1, 0, 1], "mode": "reflect"}, [_arr((2, 3))]),
    ("Pad", {"pads": [0, 1, 0, 1], "mode": "replicate"}, [_arr((2, 3))]),
    ("BroadcastTo", {"shape": [2, 3, 4]}, [_arr((3, 1))]),
    ("Concat", {"axis": 1}, [_arr((2, 2)), _arr((2, 3), seed=1), _arr((2, 1), seed=2)]),
    ("Split", {"axis": 1}, [_arr((2, 6))]),
    ("Tile", {"repeats": [2, 3]}, [_arr((2, 2))]),
    ("Gather", {"axis": 1}, [_arr((3, 4)), np.array([0, 2, 1], dtype=np.int64)]),
    # reductions
    ("ReduceSum", {"axes": [1], "keepdims": True}, [_arr((2, 3, 4))]),
    ("ReduceSum", {"axes": None, "keepdims": False}, [_arr((2, 3))]),
    ("ReduceMean", {"axes": [0, 2], "keepdims": False}, [_arr((2, 3, 4))]),
    ("ReduceMax", {"axes": [1], "keepdims": False}, [_arr((2, 3))]),
    ("ReduceMin", {"axes": [0], "keepdims": True}, [_arr((2, 3))]),
    ("ReduceProd", {"axes": [1], "keepdims": False}, [_arr((2, 3))]),
    ("ArgMax", {"axis": 1, "keepdims": False}, [_arr((2, 5))]),
    ("ArgMax", {"axis": 0, "keepdims": True}, [_arr((3, 2))]),
    ("ArgMin", {"axis": 1, "keepdims": False}, [_arr((2, 5))]),
]

_CASE_IDS = [f"{case[0]}-{index}" for index, case in enumerate(OP_CASES)]


@pytest.mark.parametrize("op,attrs,inputs", OP_CASES, ids=_CASE_IDS)
def test_kernel_matches_shape_inference(op, attrs, inputs):
    """The central invariant: inferred types equal actual kernel output types."""
    node = Node(op, "n", [f"i{k}" for k in range(len(inputs))],
                [f"o{k}" for k in range(op_info(op).n_outputs)], attrs)
    input_types = [TensorType(x.shape, DType.from_numpy(x.dtype)) for x in inputs]
    inferred = infer_output_types(node, input_types)
    outputs = execute_node(node, inputs)
    assert len(inferred) == len(outputs)
    for expected, actual in zip(inferred, outputs):
        assert tuple(actual.shape) == expected.shape, f"{op}: shape mismatch"
        assert DType.from_numpy(actual.dtype) is expected.dtype, f"{op}: dtype mismatch"


class TestKernelValues:
    def test_relu(self):
        out = execute_node(Node("Relu", "r", ["x"], ["y"]),
                           [np.array([-1.0, 2.0], dtype=np.float32)])[0]
        np.testing.assert_allclose(out, [0.0, 2.0])

    def test_conv2d_identity_kernel(self):
        x = _arr((1, 1, 4, 4))
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        out = execute_node(Node("Conv2d", "c", [], [], {"stride": 1, "padding": 0}),
                           [x, w])[0]
        np.testing.assert_allclose(out, x, rtol=1e-6)

    def test_integer_div_truncates(self):
        out = execute_node(Node("Div", "d", [], []),
                           [np.array([7, 8], dtype=np.int32),
                            np.array([2, 3], dtype=np.int32)])[0]
        np.testing.assert_array_equal(out, [3, 2])

    def test_where_selects(self):
        out = execute_node(Node("Where", "w", [], []),
                           [np.array([True, False]), np.array([1.0, 1.0]),
                            np.array([2.0, 2.0])])[0]
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_softmax_rows_sum_to_one(self):
        out = execute_node(Node("Softmax", "s", [], [], {"axis": 1}),
                           [_arr((3, 5))])[0]
        np.testing.assert_allclose(out.sum(axis=1), np.ones(3), rtol=1e-5)

    def test_pad_negative_crops(self):
        x = np.arange(6, dtype=np.float32).reshape(1, 6)
        out = execute_node(Node("Pad", "p", [], [],
                                {"pads": [0, -2, 0, -1], "mode": "constant"}), [x])[0]
        np.testing.assert_allclose(out, [[2.0, 3.0, 4.0]])

    def test_batchnorm_normalizes(self):
        x = _arr((2, 3, 2, 2), seed=5)
        scale = np.ones(3, dtype=np.float32)
        bias = np.zeros(3, dtype=np.float32)
        mean = x.mean(axis=(0, 2, 3)).astype(np.float32)
        var = x.var(axis=(0, 2, 3)).astype(np.float32)
        out = execute_node(Node("BatchNorm", "bn", [], [], {"epsilon": 1e-5}),
                           [x, scale, bias, mean, var])[0]
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4)

    def test_argmax_dtype(self):
        out = execute_node(Node("ArgMax", "a", [], [], {"axis": 1}), [_arr((2, 4))])[0]
        assert out.dtype == np.int64

    def test_resize_nearest(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = execute_node(Node("Resize2d", "r", [], [],
                                {"scale_h": 2, "scale_w": 2}), [x])[0]
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out[0, 0], [[1, 1, 2, 2], [1, 1, 2, 2],
                                               [3, 3, 4, 4], [3, 3, 4, 4]])


class TestShapeInferenceErrors:
    @pytest.mark.parametrize("op,attrs,shapes", [
        ("MatMul", {}, [(2, 3), (4, 5)]),
        ("Conv2d", {"stride": 1, "padding": 0}, [(1, 3, 2, 2), (4, 3, 5, 5)]),
        ("Conv2d", {"stride": 1, "padding": 0}, [(1, 3, 6, 6), (4, 2, 3, 3)]),
        ("Reshape", {"shape": [7]}, [(2, 3)]),
        ("Concat", {"axis": 0}, [(2, 3), (2, 4)]),
        ("Squeeze", {"axes": [0]}, [(2, 3)]),
        ("Transpose", {"perm": [0, 0]}, [(2, 3)]),
        ("BroadcastTo", {"shape": [2, 3]}, [(4,)]),
        ("Gemm", {}, [(2, 3), (4, 5)]),
        ("Split", {"axis": 0}, [(3, 2)]),
        ("Tile", {"repeats": [2]}, [(2, 3)]),
        ("Pad", {"pads": [0, 0]}, [(2, 3)]),
    ])
    def test_invalid_configurations_rejected(self, op, attrs, shapes):
        node = Node(op, "n", [f"i{k}" for k in range(len(shapes))], ["o0"], attrs)
        types = [TensorType(shape, DType.float32) for shape in shapes]
        with pytest.raises(ShapeInferenceError):
            infer_output_types(node, types)

    def test_unknown_operator(self):
        with pytest.raises(ShapeInferenceError):
            infer_output_types(Node("Bogus", "b", ["x"], ["y"]),
                               [TensorType((2,), DType.float32)])


class TestRegistry:
    def test_every_registered_op_has_kernel_and_rule(self):
        from repro.ops.shape_infer import _RULES

        for info in all_ops():
            assert has_kernel(info.name), f"missing kernel for {info.name}"
            assert info.name in _RULES, f"missing shape rule for {info.name}"

    def test_shape_preserving_set(self):
        from repro.ops.registry import SHAPE_PRESERVING_OPS

        assert "Relu" in SHAPE_PRESERVING_OPS
        assert "Conv2d" not in SHAPE_PRESERVING_OPS
        assert "Reshape" not in SHAPE_PRESERVING_OPS

    def test_unknown_op_info(self):
        from repro.errors import UnsupportedOperatorError
        from repro.ops.registry import op_info

        with pytest.raises(UnsupportedOperatorError):
            op_info("NoSuchOp")

    def test_conflicting_registration_rejected(self):
        from repro.ops.registry import OpCategory, register_op

        with pytest.raises(ValueError):
            register_op("Relu", OpCategory.reduction, 3)
