"""Differential test suite for the operator library.

Driven by the operator *registry* (:mod:`repro.ops.registry`), not by a
hand-picked list: registering a new operator kind without adding a concrete
case here fails ``test_every_registered_op_has_cases``.  Each case is
exercised three ways:

* build a single-op model (the builder records the shape-inferred output
  types) and run it through the reference interpreter — the inferred
  shapes/dtypes must match the arrays the interpreter actually produces;
* each registered compiler's ``supported_ops`` claims are *honest*: every
  claimed operator compiles and runs without ``NotImplementedError`` /
  ``UnsupportedOperatorError``, at O0 and at O2, with every seeded bug
  disabled;
* and the compiled outputs agree with the interpreter's (a clean compiler
  must be differential-test silent on valid single-op models).
"""

import numpy as np
import pytest

from repro.compilers.base import (
    CompileOptions,
    create_compiler,
    registered_compilers,
)
from repro.compilers.bugs import BugConfig
from repro.core.difftest import compare_outputs
from repro.dtypes import DType
from repro.errors import UnsupportedOperatorError
from repro.graph.builder import GraphBuilder
from repro.ops.registry import all_ops, op_info
from repro.runtime.interpreter import Interpreter


def _arr(shape, dtype=np.float32, low=0.5, high=2.5, seed=0):
    rng = np.random.default_rng(seed)
    if np.dtype(dtype).kind == "f":
        return rng.uniform(low, high, size=shape).astype(dtype)
    if np.dtype(dtype).kind == "b":
        return rng.integers(0, 2, size=shape).astype(bool)
    return rng.integers(1, 5, size=shape).astype(dtype)


#: op kind -> list of (attrs, concrete input arrays).  Every registered
#: operator must appear; the coverage test below enforces it.
CASES = {}


def _case(op, attrs, inputs):
    CASES.setdefault(op, []).append((attrs, inputs))


# Elementwise unary (float).
for _op in ["Relu", "LeakyRelu", "Sigmoid", "Tanh", "Abs", "Neg", "Exp",
            "Log", "Log2", "Sqrt", "Sin", "Cos", "Atan", "Floor", "Ceil",
            "Round", "Identity", "Erf", "Softplus", "Sign", "Reciprocal"]:
    _case(_op, {}, [_arr((2, 3))])
    _case(_op, {}, [_arr((3,), dtype=np.float64, seed=1)])
for _op in ["Asin", "Acos"]:
    _case(_op, {}, [_arr((2, 3), low=-0.9, high=0.9)])
_case("Clip", {"min": 0.0, "max": 1.5}, [_arr((2, 3))])
_case("Softmax", {"axis": 1}, [_arr((2, 5))])
_case("Softmax", {"axis": 0}, [_arr((3, 2))])
_case("Dropout", {"ratio": 0.5}, [_arr((2, 3))])
_case("Not", {}, [_arr((4,), dtype=np.bool_)])
_case("Cast", {"to": "int64"}, [_arr((2, 3))])
_case("Cast", {"to": "float32"}, [_arr((2, 3), dtype=np.int32)])

# Elementwise binary with broadcasting.
for _op in ["Add", "Sub", "Mul", "Max", "Min"]:
    _case(_op, {}, [_arr((2, 3)), _arr((1, 3), seed=1)])
    _case(_op, {}, [_arr((2, 2), dtype=np.int32), _arr((2,), dtype=np.int32, seed=1)])
_case("Div", {}, [_arr((2, 3)), _arr((2, 3), seed=1)])
_case("Div", {}, [_arr((2, 3), dtype=np.int32), _arr((2, 3), dtype=np.int32, seed=1)])
_case("Pow", {}, [_arr((2, 2)), _arr((2, 2), seed=1)])
_case("Mod", {}, [_arr((2, 3)) * 7, _arr((2, 3), seed=1) * 3])
for _op in ["Equal", "Greater", "Less", "GreaterOrEqual", "LessOrEqual"]:
    _case(_op, {}, [_arr((2, 3)), _arr((2, 3), seed=1)])
for _op in ["And", "Or", "Xor"]:
    _case(_op, {}, [_arr((4,), dtype=np.bool_), _arr((4,), dtype=np.bool_, seed=1)])
_case("Where", {}, [_arr((2, 3), dtype=np.bool_), _arr((2, 3)), _arr((1, 3), seed=1)])

# Matrix / NN operators.
_case("MatMul", {}, [_arr((3, 4)), _arr((4, 5), seed=1)])
_case("MatMul", {}, [_arr((4,)), _arr((4, 5), seed=1)])
_case("Gemm", {}, [_arr((3, 4)), _arr((4, 5), seed=1), _arr((5,), seed=2)])
_case("Conv2d", {"stride": 1, "padding": 1},
      [_arr((1, 3, 6, 6)), _arr((4, 3, 3, 3), seed=1)])
_case("Conv2d", {"stride": 2, "padding": 0},
      [_arr((1, 2, 5, 5)), _arr((3, 2, 2, 2), seed=1)])
_case("MaxPool2d", {"kh": 2, "kw": 2, "stride": 2, "padding": 0},
      [_arr((1, 2, 6, 6))])
_case("AvgPool2d", {"kh": 3, "kw": 3, "stride": 1, "padding": 1},
      [_arr((1, 2, 5, 5))])
_case("GlobalAvgPool2d", {}, [_arr((2, 3, 4, 4))])
_case("BatchNorm", {"epsilon": 1e-5},
      [_arr((2, 3, 4, 4)), _arr((3,), seed=1), _arr((3,), seed=2),
       _arr((3,), seed=3), _arr((3,), seed=4)])
_case("Resize2d", {"scale_h": 2, "scale_w": 3}, [_arr((1, 2, 3, 3))])

# Data movement / injective operators.
_case("Reshape", {"shape": [3, 8]}, [_arr((2, 3, 4))])
_case("Reshape", {"shape": [4, -1]}, [_arr((2, 3, 4))])
_case("Flatten", {"axis": 2}, [_arr((2, 3, 4, 5))])
_case("Transpose", {"perm": [1, 0, 2]}, [_arr((2, 3, 4))])
_case("Transpose", {}, [_arr((2, 3))])
_case("Squeeze", {"axes": [1]}, [_arr((2, 1, 4))])
_case("Unsqueeze", {"axes": [0, 2]}, [_arr((3, 4))])
_case("Slice", {"starts": [1], "ends": [4], "axes": [1], "steps": [2]},
      [_arr((2, 6))])
_case("Pad", {"pads": [1, 2, 1, 2], "mode": "constant", "value": 0.0},
      [_arr((2, 3))])
_case("BroadcastTo", {"shape": [2, 3, 4]}, [_arr((3, 1))])
_case("Concat", {"axis": 1}, [_arr((2, 2)), _arr((2, 3), seed=1),
                              _arr((2, 1), seed=2)])
_case("Split", {"axis": 1}, [_arr((2, 6))])
_case("Tile", {"repeats": [2, 3]}, [_arr((2, 2))])
_case("Gather", {"axis": 1}, [_arr((3, 4)),
                              np.array([0, 2, 1], dtype=np.int64)])

# Reductions.
for _op in ["ReduceSum", "ReduceMean", "ReduceMax", "ReduceMin", "ReduceProd"]:
    _case(_op, {"axes": [1], "keepdims": True}, [_arr((2, 3, 4))])
    _case(_op, {"axes": [0], "keepdims": False}, [_arr((2, 3))])
_case("ArgMax", {"axis": 1, "keepdims": False}, [_arr((2, 5))])
_case("ArgMin", {"axis": 1, "keepdims": False}, [_arr((2, 5))])


def _build_single_op_model(op, attrs, inputs):
    """A one-node model with every operand as a graph input.

    Returns the model and its concrete input feed.  The builder runs shape
    inference while recording value types, so the model itself carries the
    inferred output types the differential checks compare against.
    """
    builder = GraphBuilder(f"single_{op.lower()}")
    feed = {}
    names = []
    for array in inputs:
        name = builder.input(list(array.shape), DType.from_numpy(array.dtype))
        feed[name] = array
        names.append(name)
    builder.op(op, names, n_outputs=op_info(op).n_outputs, **attrs)
    return builder.build(), feed


_FLAT_CASES = [(op, index, attrs, inputs)
               for op, cases in sorted(CASES.items())
               for index, (attrs, inputs) in enumerate(cases)]
_CASE_IDS = [f"{op}-{index}" for op, index, _attrs, _inputs in _FLAT_CASES]


def test_every_registered_op_has_cases():
    """Registering an operator without differential coverage is an error."""
    missing = [info.name for info in all_ops() if info.name not in CASES]
    assert not missing, f"registered ops without differential cases: {missing}"
    unknown = [op for op in CASES if not any(info.name == op
                                             for info in all_ops())]
    assert not unknown, f"cases for unregistered ops: {unknown}"


@pytest.mark.parametrize("op,index,attrs,inputs", _FLAT_CASES, ids=_CASE_IDS)
def test_shape_inference_matches_interpreter(op, index, attrs, inputs):
    """Inferred output types must equal what evaluation actually produces."""
    model, feed = _build_single_op_model(op, attrs, inputs)
    outputs = Interpreter().run(model, feed)
    assert len(outputs) == op_info(op).n_outputs
    for name, array in outputs.items():
        declared = model.type_of(name)
        assert tuple(array.shape) == declared.shape, \
            f"{op}: inferred shape {declared.shape}, eval produced {array.shape}"
        assert DType.from_numpy(array.dtype) is declared.dtype, \
            f"{op}: inferred dtype {declared.dtype}, eval produced {array.dtype}"


_ALL_KINDS = [info.name for info in all_ops()]


@pytest.mark.parametrize("compiler_name", registered_compilers())
@pytest.mark.parametrize("opt_level", [0, 2])
def test_supported_ops_claims_are_honest(compiler_name, opt_level):
    """Every op a compiler claims must compile and run — no NotImplemented.

    Runs with every seeded bug disabled: a clean compiler must also agree
    with the reference interpreter on these valid single-op models.
    """
    compiler = create_compiler(
        compiler_name, CompileOptions(opt_level=opt_level,
                                      bugs=BugConfig.none()))
    claimed = compiler.supported_ops(_ALL_KINDS)
    assert set(claimed) <= set(_ALL_KINDS)
    assert claimed, f"{compiler_name} claims to support nothing"

    interpreter = Interpreter()
    for op in claimed:
        attrs, inputs = CASES[op][0]
        model, feed = _build_single_op_model(op, attrs, inputs)
        try:
            compiled = compiler.compile_model(model)
            outputs = compiled.run(feed)
        except (NotImplementedError, UnsupportedOperatorError) as exc:
            pytest.fail(f"{compiler_name} claims {op!r} but raised "
                        f"{type(exc).__name__}: {exc}")
        oracle = interpreter.run(model, feed)
        mismatch = compare_outputs(oracle, outputs)
        assert mismatch is None, \
            f"{compiler_name} (O{opt_level}) disagrees on clean {op!r}: {mismatch}"
