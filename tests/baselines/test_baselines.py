"""Tests for the LEMON, GraphFuzzer and Tzer baselines and the seed zoo."""

import numpy as np
import pytest

from repro.baselines import GraphFuzzerGenerator, LemonGenerator, TzerFuzzer, build_seed_models
from repro.compilers.bugs import BugConfig
from repro.compilers.coverage import CoverageTracer
from repro.graph.validate import validation_errors
from repro.ops.registry import SHAPE_PRESERVING_OPS
from repro.runtime import Interpreter, random_inputs


class TestSeedZoo:
    def test_seed_models_are_valid_and_runnable(self):
        models = build_seed_models()
        assert len(models) == 3
        for model in models:
            assert validation_errors(model) == []
            inputs = random_inputs(model, np.random.default_rng(0))
            Interpreter().run(model, inputs)

    def test_seed_models_are_realistic_sizes(self):
        for model in build_seed_models():
            assert len(model.nodes) >= 5


class TestLemon:
    def test_mutants_stay_valid(self):
        generator = LemonGenerator(seed=0)
        for _ in range(15):
            model = generator.next_case()
            assert validation_errors(model) == []

    def test_only_shape_preserving_ops_added(self):
        """LEMON's design restriction: it never introduces new operator kinds
        beyond shape-preserving unary layers."""
        baseline_ops = set()
        for model in build_seed_models():
            baseline_ops.update(node.op for node in model.nodes)
        generator = LemonGenerator(seed=1)
        new_ops = set()
        for _ in range(25):
            model = generator.next_case()
            new_ops.update(node.op for node in model.nodes)
        assert new_ops - baseline_ops <= set(SHAPE_PRESERVING_OPS)

    def test_mutants_are_executable(self):
        generator = LemonGenerator(seed=2)
        for _ in range(5):
            model = generator.next_case()
            Interpreter().run(model, random_inputs(model, np.random.default_rng(0)))


class TestGraphFuzzer:
    def test_models_valid_and_runnable(self):
        generator = GraphFuzzerGenerator(seed=0, n_nodes=8)
        for _ in range(10):
            model = generator.next_case()
            assert validation_errors(model) == []
            Interpreter().run(model, random_inputs(model, np.random.default_rng(1)))

    def test_shape_alignment_inserts_slices(self):
        """GraphFuzzer's signature behaviour: slicing nodes appear to align
        mismatched shapes (the bias the paper criticises)."""
        generator = GraphFuzzerGenerator(seed=3, n_nodes=12)
        ops = set()
        for _ in range(20):
            ops.update(node.op for node in generator.next_case().nodes)
        assert "Slice" in ops

    def test_conv_instances_are_shape_preserving(self):
        generator = GraphFuzzerGenerator(seed=1, n_nodes=12)
        for _ in range(20):
            model = generator.next_case()
            for node in model.nodes:
                if node.op == "Conv2d":
                    assert model.type_of(node.inputs[0]).shape == \
                        model.type_of(node.outputs[0]).shape


class TestTzer:
    def test_iterations_run_and_grow_corpus(self):
        fuzzer = TzerFuzzer(seed=0, bugs=BugConfig.none())
        initial = len(fuzzer.corpus)
        for _ in range(10):
            fuzzer.run_iteration()
        assert len(fuzzer.corpus) >= initial

    def test_coverage_feedback(self):
        fuzzer = TzerFuzzer(seed=1, bugs=BugConfig.all())
        tracer = CoverageTracer(systems=("deepc",))
        crashes = 0
        with tracer:
            for _ in range(10):
                crashes += int(fuzzer.run_iteration(tracer))
        assert tracer.count() > 0
        # Crashes, if any, are recorded with messages.
        assert len(fuzzer.crashes) == crashes
