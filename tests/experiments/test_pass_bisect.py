"""Pass-sequence bisection: ddmin minimality, determinism, attribution."""

import numpy as np
import pytest

from repro.compilers.pipeline import PipelineSpec, canonical_spec
from repro.experiments.pass_bisect import (
    BisectResult,
    Failure,
    bisect_finding,
    flatten_spec,
    minimize_passes,
    spec_from_passes,
)
from repro.graph.builder import GraphBuilder


def _ordering_model():
    """Add feeding a single Softmax consumer: the BiasSoftmaxFusion motif."""
    builder = GraphBuilder("biasmax")
    x = builder.input([2, 6])
    bias = builder.weight(np.linspace(-1, 1, 6, dtype=np.float32))
    hidden = builder.op1("Add", [x, bias])
    out = builder.op1("Softmax", [hidden], axis=1)
    builder.output(out)
    return builder.build()


#: A sampled pipeline that runs BiasSoftmaxFusion before ConstantFolding.
ORDERING_SPEC = PipelineSpec.from_stage_map("ordertest", {
    "graphrt": ["EliminateIdentity", "BiasSoftmaxFusion", "ReshapeMerge",
                "ConstantFolding", "DeadCodeElimination"]})


class TestMinimizePasses:
    def test_shrinks_to_the_interacting_pair_preserving_order(self):
        passes = [("s", name) for name in "ABCDEFGH"]

        def reproduces(candidate):
            names = [name for _, name in candidate]
            return "B" in names and "F" in names and \
                names.index("B") < names.index("F")

        minimal, probes = minimize_passes(reproduces, passes)
        assert minimal == (("s", "B"), ("s", "F"))
        assert probes > 0

    def test_single_culprit(self):
        passes = [("s", name) for name in "ABCD"]
        minimal, _ = minimize_passes(
            lambda cand: any(name == "C" for _, name in cand), passes)
        assert minimal == (("s", "C"),)

    def test_is_deterministic(self):
        passes = [("s", name) for name in "ABCDEFGH"]

        def reproduces(candidate):
            names = [name for _, name in candidate]
            return {"A", "D", "G"} <= set(names)

        first = minimize_passes(reproduces, passes)
        assert first == minimize_passes(reproduces, passes)
        assert first[0] == (("s", "A"), ("s", "D"), ("s", "G"))

    def test_irreducible_sequence_returned_whole(self):
        passes = [("s", "A"), ("s", "B")]
        minimal, _ = minimize_passes(lambda cand: len(cand) == 2, passes)
        assert minimal == tuple(passes)


class TestSpecHelpers:
    def test_flatten_round_trips_through_spec(self):
        spec = canonical_spec(2)
        flat = flatten_spec(spec)
        rebuilt = spec_from_passes("rebuilt", flat)
        for stage, names in spec.stages:
            assert rebuilt.passes(stage) == names

    def test_flatten_preserves_stage_order(self):
        flat = flatten_spec(ORDERING_SPEC)
        assert flat[0] == ("graphrt", "EliminateIdentity")
        assert flat.index(("graphrt", "BiasSoftmaxFusion")) < \
            flat.index(("graphrt", "ConstantFolding"))


class TestBisectFinding:
    def test_attributes_ordering_bug_to_two_passes(self):
        result = bisect_finding(_ordering_model(), "graphrt", ORDERING_SPEC)
        assert isinstance(result, BisectResult)
        assert result.reproduced
        assert result.minimal == (("graphrt", "BiasSoftmaxFusion"),
                                  ("graphrt", "ConstantFolding"))
        assert result.failure.status == "crash"
        assert "graphrt-constfold-internal-biassoftmax" in \
            result.failure.bug_ids
        # the minimal spec is runnable and reproduces on its own
        rerun = bisect_finding(_ordering_model(), "graphrt", result.spec)
        assert rerun.reproduced and rerun.minimal == result.minimal

    def test_is_deterministic(self):
        first = bisect_finding(_ordering_model(), "graphrt", ORDERING_SPEC)
        again = bisect_finding(_ordering_model(), "graphrt", ORDERING_SPEC)
        assert (first.minimal, first.probes) == (again.minimal, again.probes)

    def test_accepts_pipeline_tokens(self):
        result = bisect_finding(_ordering_model(), "graphrt",
                                "rand:14682586710177421089:1")
        assert result.reproduced
        assert result.minimal == (("graphrt", "BiasSoftmaxFusion"),
                                  ("graphrt", "ConstantFolding"))

    def test_non_reproducing_pipeline_reports_it(self):
        # canonical O2 runs folding before fusion: nothing to bisect
        result = bisect_finding(_ordering_model(), "graphrt",
                                canonical_spec(2))
        assert not result.reproduced
        assert result.failure is None
        assert result.probes == 1


class TestFailureMatching:
    def test_crash_matches_by_shared_bug_id(self):
        a = Failure("crash", ("bug-x",), "m1")
        b = Failure("crash", ("bug-x", "bug-y"), "m2")
        assert a.matches(b)
        assert not a.matches(Failure("crash", ("bug-z",), "m3"))

    def test_unlabeled_crashes_match_by_status(self):
        assert Failure("crash", (), "a").matches(Failure("crash", (), "b"))
        assert not Failure("crash", (), "a").matches(
            Failure("semantic", (), "b"))
