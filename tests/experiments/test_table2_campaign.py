"""The fuzzer-comparison pipeline (Table 2 analogue), end to end.

Campaign tier: these run real multi-strategy generator-axis campaigns
(scaled down), checking that the registry-backed engine reproduces the
paper's ordering — NNSmith finds at least as much as every baseline — and
that the ``make table2`` entry point emits the summary.
"""

import pytest

from repro.experiments import run_fuzzer_comparison
from repro.experiments.bug_study import crash_comparison
from repro.experiments.table2 import format_fuzzer_comparison, run_table2

pytestmark = pytest.mark.campaign


class TestCrashComparisonThroughEngine:
    def test_rankings_match_the_paper(self):
        result = crash_comparison(max_iterations=10, seed=1, n_nodes=6)
        assert set(result.unique_crashes) == {"nnsmith", "graphfuzzer",
                                              "lemon"}
        nnsmith = len(result.seeded_found["nnsmith"])
        for baseline in ("graphfuzzer", "lemon"):
            assert nnsmith >= len(result.seeded_found[baseline])
        assert nnsmith > 0

    def test_formatted_summary_lists_every_fuzzer(self):
        result = crash_comparison(max_iterations=6, seed=0, n_nodes=5,
                                  fuzzers=("nnsmith", "targeted"))
        text = format_fuzzer_comparison(result)
        assert "nnsmith" in text and "targeted" in text
        assert "seeded bugs" in text


class TestTable2EntryPoint:
    def test_run_table2_emits_summary_and_reachability(self):
        text = run_table2(max_iterations=8, seed=0, n_nodes=5, workers=1,
                          fuzzers=("nnsmith", "targeted"))
        assert "Fuzzer comparison" in text
        assert "Design-level reachability" in text
        assert "targeted" in text


class TestParallelFuzzerComparison:
    def test_parallel_equals_serial_coverage(self):
        serial = run_fuzzer_comparison("graphrt",
                                       fuzzers=("nnsmith", "graphfuzzer"),
                                       max_iterations=4, seed=0, workers=1)
        parallel = run_fuzzer_comparison("graphrt",
                                         fuzzers=("nnsmith", "graphfuzzer"),
                                         max_iterations=4, seed=0)
        assert set(serial) == set(parallel) == {"nnsmith", "graphfuzzer"}
        for name in serial:
            assert serial[name].arcs == parallel[name].arcs
            assert serial[name].iterations == parallel[name].iterations
