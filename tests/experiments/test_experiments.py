"""Tests for the experiment drivers (small budgets, shape checks only)."""

import pytest

from repro.experiments import (
    build_model_group,
    format_venn_table,
    make_case_generator,
    measure_nan_rate,
    reachability_analysis,
    run_bug_study,
    run_coverage_campaign,
    run_gradient_ablation,
    run_instance_diversity,
    run_tzer_campaign,
    totals,
    unique_counts,
    venn_regions,
)
from repro.experiments.reporting import format_ratio_bars, format_series, format_table
from repro.graph.validate import validation_errors


class TestVenn:
    def test_regions(self):
        sets = {"a": {1, 2, 3}, "b": {2, 3, 4}, "c": {5}}
        regions = venn_regions(sets)
        assert regions[frozenset({"a"})] == 1
        assert regions[frozenset({"a", "b"})] == 2
        assert regions[frozenset({"c"})] == 1

    def test_unique_counts_and_totals(self):
        sets = {"a": {1, 2}, "b": {2, 3, 4}}
        assert unique_counts(sets) == {"a": 1, "b": 2}
        assert totals(sets) == {"a": 2, "b": 3}

    def test_format_table_text(self):
        text = format_venn_table({"x": {1}, "y": {1, 2}}, title="demo")
        assert "demo" in text and "x" in text and "exclusive" in text


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2}], ["a", "b"], title="t")
        assert "t" in text and "1" in text

    def test_format_series_downsamples(self):
        text = format_series("curve", range(100), range(100), max_points=5)
        assert text.count("(") <= 7

    def test_format_ratio_bars(self):
        text = format_ratio_bars({"conv2d": 2.0, "where": 1.0}, title="fig9")
        assert "conv2d" in text and "#" in text


class TestCaseGenerators:
    @pytest.mark.parametrize("name", ["nnsmith", "graphfuzzer", "lemon"])
    def test_generators_produce_valid_models(self, name):
        generator = make_case_generator(name, seed=0, n_nodes=6)
        for _ in range(3):
            model = generator.next_case()
            assert validation_errors(model) == []

    def test_unknown_generator(self):
        with pytest.raises(KeyError):
            make_case_generator("csmith")


class TestCoverageCampaigns:
    def test_nnsmith_campaign_collects_coverage(self):
        generator = make_case_generator("nnsmith", seed=0, n_nodes=6)
        result = run_coverage_campaign(generator, "graphrt", max_iterations=4)
        assert result.total_coverage > 0
        assert result.pass_coverage > 0
        assert result.iterations == 4
        assert len(result.timeline.samples) == 4
        assert result.timeline.final_total() == result.total_coverage

    def test_tzer_campaign(self):
        result = run_tzer_campaign(max_iterations=4)
        assert result.fuzzer == "tzer"
        assert result.total_coverage > 0


class TestAblations:
    def test_instance_diversity(self):
        result = run_instance_diversity(iterations=4, n_nodes=6)
        assert result.unique_instances(True) > 0
        assert result.unique_instances(False) > 0
        assert result.normalized_ratio_by_op()

    def test_gradient_ablation_structure(self):
        result = run_gradient_ablation(n_nodes=6, n_models=3, budgets_ms=[8.0])
        assert set(result.curves) == {"sampling", "gradient", "gradient_proxy"}
        for curve in result.curves.values():
            assert len(curve.success_rates) == 1
            assert 0.0 <= curve.success_rates[0] <= 1.0

    def test_model_group_has_vulnerable_ops(self):
        from repro.core.losses import is_vulnerable

        models = build_model_group(8, 3, seed=1)
        for model in models:
            assert any(is_vulnerable(node.op) for node in model.nodes)

    def test_nan_rate_measurement(self):
        result = measure_nan_rate(n_nodes=10, n_models=4, seed=0)
        assert 0.0 <= result.rate <= 1.0
        assert result.n_models == 4


class TestBugStudy:
    def test_reachability_matches_paper_ordering(self):
        analysis = reachability_analysis()
        assert analysis["nnsmith"] == analysis["total_bugs"]
        assert analysis["nnsmith"] > analysis["graphfuzzer"] >= analysis["lemon"]
        assert analysis["unreachable_by_baselines"] > analysis["total_bugs"] / 2

    def test_bug_study_produces_table(self):
        table = run_bug_study(max_iterations=10, seed=1)
        rows = table.rows()
        assert rows[-1]["system"] == "Total"
        crash, semantic = table.crash_semantic_split()
        assert crash + semantic == table.count()
