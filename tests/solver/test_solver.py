"""Tests for the constraint solver: expressions, constraints, search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnsatisfiableError
from repro.solver import (
    And,
    Comparison,
    Const,
    Domain,
    Not,
    Or,
    Solver,
    SymVar,
    conjunction,
    product,
    solve,
    sym_max,
    sym_min,
    to_expr,
)
from repro.solver.interval import tighten


class TestExpressions:
    def test_evaluation(self):
        a, b = SymVar("a"), SymVar("b")
        expr = (a + 2) * b - a // 2
        assert expr.evaluate({"a": 4, "b": 3}) == 16

    def test_mod_and_min_max(self):
        a = SymVar("a")
        assert (a % 3).evaluate({"a": 7}) == 1
        assert sym_min(a, 5).evaluate({"a": 7}) == 5
        assert sym_max(a, 5).evaluate({"a": 7}) == 7

    def test_division_by_zero_is_sentinel(self):
        a = SymVar("a")
        value = (Const(10) // a).evaluate({"a": 0})
        assert value > 1 << 60

    def test_product(self):
        dims = [SymVar("x"), SymVar("y"), Const(2)]
        assert product(dims).evaluate({"x": 3, "y": 4}) == 24
        assert product([]).evaluate({}) == 1

    def test_variables(self):
        expr = SymVar("a") * 3 + SymVar("b")
        assert expr.variables() == frozenset({"a", "b"})

    def test_to_expr_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            to_expr(True)
        with pytest.raises(TypeError):
            to_expr(1.5)

    def test_missing_assignment(self):
        with pytest.raises(KeyError):
            SymVar("zzz").evaluate({})

    def test_repr_roundtrip_like(self):
        expr = (SymVar("a") + 1) * SymVar("b")
        assert "a" in repr(expr) and "b" in repr(expr)


class TestConstraints:
    def test_comparison_truth(self):
        a = SymVar("a")
        assert (a >= 3).satisfied({"a": 3})
        assert not (a > 3).satisfied({"a": 3})
        assert (a != 4).satisfied({"a": 3})

    def test_comparison_has_no_bool(self):
        with pytest.raises(TypeError):
            bool(SymVar("a") == 3)

    def test_and_or_not(self):
        a, b = SymVar("a"), SymVar("b")
        both = And([a > 0, b > 0])
        either = Or([a > 5, b > 5])
        negated = Not(a == b)
        assign = {"a": 1, "b": 6}
        assert both.satisfied(assign)
        assert either.satisfied(assign)
        assert negated.satisfied(assign)

    def test_operator_composition(self):
        a = SymVar("a")
        combined = (a > 0) & (a < 5) | (a == 10)
        assert combined.satisfied({"a": 10})
        assert combined.satisfied({"a": 3})
        assert not combined.satisfied({"a": 7})

    def test_conjunction_empty_is_true(self):
        assert conjunction([]).satisfied({})


class TestDomains:
    def test_clamp_and_contains(self):
        domain = Domain(2, 10)
        assert domain.clamp(0) == 2
        assert domain.clamp(100) == 10
        assert domain.contains(5)
        assert not domain.contains(11)

    def test_candidates_small_domain_enumerates(self):
        assert Domain(1, 5).candidates() == [1, 2, 3, 4, 5]

    def test_candidates_large_domain_includes_bounds(self):
        candidates = Domain(1, 100000).candidates()
        assert 1 in candidates and 100000 in candidates
        assert len(candidates) < 1000

    def test_tighten(self):
        domains = {"a": Domain(1, 100), "b": Domain(1, 100)}
        tighten(domains, [SymVar("a") <= Const(10), Const(5) <= SymVar("b"),
                          SymVar("a") > Const(2)])
        assert domains["a"].low == 3 and domains["a"].high == 10
        assert domains["b"].low == 5


class TestSolver:
    def test_simple_satisfiable(self):
        model = solve([SymVar("a") + SymVar("b") == 10, SymVar("a") > SymVar("b")],
                      seed=0, bounds={"a": (1, 20), "b": (1, 20)})
        assert model["a"] + model["b"] == 10
        assert model["a"] > model["b"]

    def test_unsatisfiable_raises(self):
        with pytest.raises(UnsatisfiableError):
            solve([SymVar("a") > 5, SymVar("a") < 3], seed=0, bounds={"a": (1, 10)})

    def test_product_equality(self):
        model = solve([product([SymVar("x"), SymVar("y"), SymVar("z")]) == 7688],
                      seed=0, bounds={k: (1, 128) for k in "xyz"})
        assert model["x"] * model["y"] * model["z"] == 7688

    def test_disjunction_broadcast_style(self):
        a, b = SymVar("a"), SymVar("b")
        model = solve([Or([a == b, a == 1, b == 1]), b == 7, a > 2],
                      seed=0, bounds={"a": (1, 16), "b": (1, 16)})
        assert model["b"] == 7 and model["a"] == 7

    def test_incremental_rejection_keeps_state(self):
        solver = Solver(seed=0)
        a = solver.int_var("a", 1, 10)
        assert solver.try_add_constraints([a >= 4])
        before = solver.model()["a"]
        assert not solver.try_add_constraints([a > 100])
        assert solver.model()["a"] == before
        assert len(solver.constraints) == 1

    def test_push_pop(self):
        solver = Solver(seed=0)
        a = solver.int_var("a", 1, 10)
        solver.add([a >= 2])
        solver.push()
        solver.add([a >= 9])
        assert solver.check()
        assert solver.model()["a"] >= 9
        solver.pop()
        assert len(solver.constraints) == 1

    def test_pop_without_push(self):
        with pytest.raises(UnsatisfiableError):
            Solver().pop()

    def test_boundary_values_without_binning(self):
        """The motivation for attribute binning: free vars sit at the boundary."""
        solver = Solver(seed=0)
        dims = [solver.int_var(f"d{i}", 1, 64) for i in range(4)]
        assert solver.try_add_constraints([d >= 1 for d in dims])
        assert all(solver.model()[f"d{i}"] == 1 for i in range(4))

    def test_phase_saving_incremental_speed(self):
        solver = Solver(seed=0)
        variables = [solver.int_var(f"v{i}", 1, 32) for i in range(20)]
        for i in range(19):
            assert solver.try_add_constraints([variables[i + 1] >= variables[i]])
        nodes_before = solver.stats["nodes"]
        assert solver.try_add_constraints([variables[0] <= 30])
        assert solver.stats["nodes"] - nodes_before < 5000

    def test_conv_style_constraints(self):
        solver = Solver(seed=3)
        h = solver.int_var("h", 1, 64)
        kh = solver.int_var("kh", 1, 8)
        stride = solver.int_var("s", 1, 4)
        pad = solver.int_var("p", 0, 4)
        out = (h - kh + 2 * pad) // stride + 1
        assert solver.try_add_constraints([kh <= h + 2 * pad, out >= 1, out <= 64])
        model = solver.model()
        out_value = (model["h"] - model["kh"] + 2 * model["p"]) // model["s"] + 1
        assert 1 <= out_value <= 64

    def test_budget_override(self):
        solver = Solver(seed=0, max_nodes=10)
        a = solver.int_var("a", 1, 1 << 20)
        b = solver.int_var("b", 1, 1 << 20)
        # Hard instance with a tiny default budget, generous explicit budget.
        assert solver.try_add_constraints([a * b == 1 << 18, a > 1, b > 1],
                                          budget=200_000)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=60))
    def test_random_linear_systems(self, total, delta):
        """a + b == total and a - b == delta has a model iff parity/range allow."""
        a, b = SymVar("a"), SymVar("b")
        constraints = [a + b == total, a - b == delta]
        solvable = (total + delta) % 2 == 0 and total >= delta and (total - delta) >= 2
        try:
            model = solve(constraints, seed=1, bounds={"a": (1, 300), "b": (1, 300)})
        except UnsatisfiableError:
            assert not solvable
        else:
            assert model["a"] + model["b"] == total
            assert model["a"] - model["b"] == delta

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=4))
    def test_model_always_satisfies_constraints(self, values):
        """Whatever model the solver returns must satisfy every constraint."""
        solver = Solver(seed=0)
        names = [f"x{i}" for i in range(len(values))]
        variables = [solver.int_var(name, 1, 100) for name in names]
        constraints = [var >= value for var, value in zip(variables, values)]
        constraints.append(sum(variables[1:], variables[0]) <= 500)
        assert solver.try_add_constraints(constraints)
        model = solver.model()
        for constraint in solver.constraints:
            assert constraint.satisfied(model)
