"""Figure 11: effectiveness of gradient-guided value search.

Paper result: gradient search with proxy derivatives reaches the highest
success rate (98% within 3.5 ms on 10-node models), improving over random
sampling by 1.16-1.34x as models grow; proxy derivatives consistently help.
"""

import pytest

from repro.experiments import run_gradient_ablation


@pytest.mark.parametrize("n_nodes", [10, 20, 30])
def test_fig11_gradient_search_success_rate(benchmark, n_nodes):
    result = benchmark.pedantic(
        run_gradient_ablation,
        kwargs={"n_nodes": n_nodes, "n_models": 10,
                "budgets_ms": [8.0, 16.0, 32.0, 64.0], "seed": n_nodes},
        rounds=1, iterations=1)

    print(f"\n[Figure 11] model size {n_nodes} ({result.n_models} models)")
    for method, curve in result.curves.items():
        pairs = ", ".join(
            f"{budget:.0f}ms -> {rate * 100:.0f}% (avg {avg:.1f}ms)"
            for budget, rate, avg in zip(curve.budgets, curve.success_rates,
                                         curve.average_times))
        print(f"  {method:<16} {pairs}")

    proxy = result.best_success_rate("gradient_proxy")
    sampling = result.best_success_rate("sampling")
    # Shape check: the full gradient method matches or beats sampling.  With
    # only ten models per group a single model moves the rate by 10
    # percentage points (e.g. a model whose NaN source is integer/boolean
    # valued and therefore invisible to gradients), so allow one to two
    # models of tolerance while still requiring a high success rate.
    assert proxy >= sampling - 0.2
    assert proxy >= 0.6
    assert proxy >= result.best_success_rate("gradient") - 0.2
