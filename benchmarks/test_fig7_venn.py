"""Figure 7: Venn decomposition of covered branches across the three fuzzers.

Paper result: NNSmith has by far the largest unique coverage (32.7x the 2nd
best on ONNXRuntime, 10.8x on TVM); LEMON, despite its lower total coverage,
has more unique branches than GraphFuzzer because it mutates real models.
"""

import pytest

from benchmarks.conftest import COVERAGE_ITERATIONS
from repro.experiments import run_fuzzer_comparison, unique_counts
from repro.experiments.venn import format_venn_table, totals


@pytest.mark.parametrize("compiler", ["graphrt", "deepc"])
def test_fig7_unique_coverage_venn(benchmark, compiler):
    results = benchmark.pedantic(
        run_fuzzer_comparison, args=(compiler,),
        kwargs={"max_iterations": COVERAGE_ITERATIONS, "seed": 3},
        rounds=1, iterations=1)

    coverage_sets = {name: campaign.arcs for name, campaign in results.items()}
    print(f"\n[Figure 7 / {compiler}]")
    print(format_venn_table(coverage_sets, title="  branch coverage Venn regions"))
    uniques = unique_counts(coverage_sets)
    print("  unique branches:", uniques)

    # Unique coverage is the paper's headline metric here (32.7x / 10.8x over
    # the baselines): NNSmith must dominate it on both compilers.  Total
    # coverage only needs to be at/near the top (the paper's TVM margin is a
    # near-tie at 1.08x).
    assert totals(coverage_sets)["nnsmith"] >= 0.85 * max(totals(coverage_sets).values())
    assert uniques["nnsmith"] > uniques["graphfuzzer"]
    assert uniques["nnsmith"] > uniques["lemon"]
