"""Throughput of the sharded/matrix parallel campaign engine.

The paper's headline metric is bugs-found-per-unit-time, which at fixed
per-iteration cost reduces to iteration throughput.  This benchmark runs the
same campaign budget through the serial ``Fuzzer`` loop and through
``run_parallel_campaign`` and prints iterations/second for each, then does
the same for a compiler-set × opt-level matrix campaign with adaptive chunk
scheduling.

On a machine with >= 4 cores the 4-worker parallel run must reach at least
2x the serial throughput; on smaller boxes the speedup assertion is relaxed
to "completes and matches the serial shard results" since there is no
parallel hardware to exploit.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.compilers.bugs import BugConfig
from repro.core.fuzzer import FuzzerConfig
from repro.core.generator import GeneratorConfig
from repro.core.parallel import (
    deterministic_config,
    run_parallel_campaign,
    run_sharded_serial,
)

ITERATIONS = 32
WORKERS = 4


def _config():
    # Step-bounded value search: identical work on both paths regardless of
    # CPU contention, so the bug-set equality assertion below is exact.
    return deterministic_config(FuzzerConfig(
        generator=GeneratorConfig(n_nodes=6),
        max_iterations=ITERATIONS,
        bugs=BugConfig.all(),
        seed=13,
    ), max_steps=8)


def _throughput(result, elapsed):
    return result.iterations / max(elapsed, 1e-9)


@pytest.mark.smoke
def test_parallel_scaling(once):
    def run_both():
        start = time.monotonic()
        serial = run_sharded_serial(_config(), WORKERS)
        serial_elapsed = time.monotonic() - start

        start = time.monotonic()
        parallel = run_parallel_campaign(config=_config(), n_workers=WORKERS)
        parallel_elapsed = time.monotonic() - start
        return serial, serial_elapsed, parallel, parallel_elapsed

    serial, serial_elapsed, parallel, parallel_elapsed = once(run_both)

    serial_rate = _throughput(serial, serial_elapsed)
    parallel_rate = _throughput(parallel, parallel_elapsed)
    cores = multiprocessing.cpu_count()
    print(f"\n--- Parallel campaign scaling ({ITERATIONS} iterations, "
          f"{WORKERS} workers, {cores} cores) ---")
    print(f"serial:   {serial_elapsed:6.2f}s  {serial_rate:6.2f} iters/s")
    print(f"parallel: {parallel_elapsed:6.2f}s  {parallel_rate:6.2f} iters/s  "
          f"(speedup {parallel_rate / max(serial_rate, 1e-9):.2f}x)")

    assert parallel.iterations == ITERATIONS
    assert serial.iterations == ITERATIONS
    # Both paths explore the same shard seed streams.
    assert parallel.seeded_bugs_found == serial.seeded_bugs_found
    # Only meaningful with real parallel hardware AND enough serial work to
    # amortize process spawn + IPC overhead; a sub-second micro-run would
    # measure constant costs, not scaling.
    if cores >= 4 and serial_elapsed >= 1.0:
        assert parallel_rate >= 2.0 * serial_rate, (
            f"expected >=2x speedup on {cores} cores, got "
            f"{parallel_rate / max(serial_rate, 1e-9):.2f}x")


@pytest.mark.smoke
def test_matrix_campaign_scaling(once):
    """Adaptive matrix scheduling: a 2-subset × 2-opt-level campaign keeps
    all workers busy and preserves per-cell iteration budgets exactly."""
    iterations = 12
    subsets = [["graphrt", "deepc"], ["turbo"]]

    def run_matrix():
        start = time.monotonic()
        result = run_parallel_campaign(
            config=deterministic_config(FuzzerConfig(
                generator=GeneratorConfig(n_nodes=6),
                max_iterations=iterations,
                bugs=BugConfig.all(),
                seed=17,
            ), max_steps=8),
            n_workers=WORKERS, n_shards=2,
            compiler_sets=subsets, opt_levels=[0, 2],
            adaptive=True)
        return result, time.monotonic() - start

    result, elapsed = once(run_matrix)
    combos = len(subsets) * 2
    print(f"\n--- Matrix campaign ({combos} combos x {iterations} iterations, "
          f"{WORKERS} workers) ---")
    print(f"matrix:   {elapsed:6.2f}s  "
          f"{result.iterations / max(elapsed, 1e-9):6.2f} iters/s  "
          f"({len(result.cells)} cells)")

    assert result.iterations == combos * iterations
    assert len(result.cells) == combos * 2
    # every combination ran its full budget, split over its two shards
    per_combo = {}
    for cell in result.cells.values():
        key = (cell.compilers, cell.opt_level)
        per_combo[key] = per_combo.get(key, 0) + cell.iterations
    assert set(per_combo.values()) == {iterations}
