"""Figure 6: branch coverage restricted to the optimization-pass files.

Paper result: NNSmith outperforms GraphFuzzer by 1.85x (ONNXRuntime) and
1.09x (TVM) on pass-only coverage, showing its strength at exercising
compiler transformation logic specifically.
"""

import pytest

from benchmarks.conftest import COVERAGE_ITERATIONS
from repro.experiments import run_fuzzer_comparison
from repro.experiments.reporting import format_series


@pytest.mark.parametrize("compiler", ["graphrt", "deepc"])
def test_fig6_pass_only_coverage(benchmark, compiler):
    results = benchmark.pedantic(
        run_fuzzer_comparison, args=(compiler,),
        kwargs={"max_iterations": COVERAGE_ITERATIONS, "seed": 2},
        rounds=1, iterations=1)

    print(f"\n[Figure 6 / {compiler}] pass-only branch coverage over time")
    for name, campaign in results.items():
        series = campaign.timeline.as_series("pass_only")
        print(" ", format_series(name, series["elapsed"], series["pass_only"],
                                 "seconds", "pass arcs"))
        print(f"    {name}: final pass-only coverage = {campaign.pass_coverage}")

    best_baseline = max(results["lemon"].pass_coverage,
                        results["graphfuzzer"].pass_coverage)
    if compiler == "graphrt":
        # Paper: 1.85x over the second-best baseline on ONNXRuntime.
        assert results["nnsmith"].pass_coverage > best_baseline
    else:
        # Paper: only 1.09x on TVM — a near-tie, so allow small-budget noise.
        assert results["nnsmith"].pass_coverage >= 0.85 * best_baseline
