"""Coverage-feedback overhead: ``--schedule coverage`` vs ``static``.

The coverage scheduler buys novelty-directed leasing with two costs:
``sys.settrace`` around every oracle call and the per-iteration delta
traffic up the feedback channel.  This benchmark prices that on a smoke
matrix — same findings by construction (the scheduler-equivalence
contract), so the only interesting numbers are the wall-clock ratio and
the telemetry volume.
"""

import time

import pytest

from repro.core.parallel import run_parallel_campaign
from repro.testing import campaign_signature, tiny_campaign_config

MATRIX = dict(compiler_sets=[["graphrt", "deepc"], ["turbo"]],
              opt_levels=[2], n_shards=2)


@pytest.mark.smoke
@pytest.mark.campaign
def test_coverage_scheduling_overhead(benchmark):
    config = tiny_campaign_config(iterations=6, seed=41)

    def run_both():
        timings = {}
        results = {}
        for schedule in ("static", "coverage"):
            start = time.monotonic()
            results[schedule] = run_parallel_campaign(
                config=config, n_workers=1, schedule=schedule, **MATRIX)
            timings[schedule] = time.monotonic() - start
        return timings, results

    timings, results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    static, coverage = results["static"], results["coverage"]
    overhead = timings["coverage"] / max(timings["static"], 1e-9)
    print("\n[Scheduler overhead] coverage feedback vs static "
          f"on a {len(static.cells)}-cell smoke matrix")
    print(f"  static:   {timings['static']:.2f}s, 0 arcs traced")
    print(f"  coverage: {timings['coverage']:.2f}s, "
          f"{len(coverage.coverage_arcs)} arcs, "
          f"{len(coverage.coverage_timeline)} telemetry samples")
    print(f"  wall-clock overhead: {overhead:.2f}x")

    # the contract: identical findings, telemetry only under coverage
    assert campaign_signature(static) == campaign_signature(coverage)
    assert coverage.coverage_arcs and not static.coverage_arcs
    # tracing every oracle call costs real time but must stay in the same
    # order of magnitude (generous bound: the suite runs on loaded CI boxes)
    assert overhead < 20.0
