"""Figure 4: total branch coverage over time (all files), per compiler.

Paper result: NNSmith beats GraphFuzzer (the 2nd best) by 1.8x on
ONNXRuntime and 1.08x on TVM in total coverage; LEMON is last and slowest.
Here the same campaign runs against GraphRT (ONNXRuntime analogue) and DeepC
(TVM analogue) with a small iteration budget.
"""

import pytest

from benchmarks.conftest import COVERAGE_ITERATIONS
from repro.experiments import run_fuzzer_comparison
from repro.experiments.reporting import format_series


@pytest.mark.parametrize("compiler", ["graphrt", "deepc"])
def test_fig4_total_coverage_over_time(benchmark, compiler):
    results = benchmark.pedantic(
        run_fuzzer_comparison, args=(compiler,),
        kwargs={"max_iterations": COVERAGE_ITERATIONS, "seed": 0},
        rounds=1, iterations=1)

    print(f"\n[Figure 4 / {compiler}] total branch coverage over time")
    for name, campaign in results.items():
        series = campaign.timeline.as_series("total")
        print(" ", format_series(name, series["elapsed"], series["total"],
                                 "seconds", "arcs"))
        print(f"    {name}: final={campaign.total_coverage} arcs "
              f"in {campaign.elapsed:.1f}s over {campaign.iterations} test cases")

    nnsmith = results["nnsmith"].total_coverage
    graphfuzzer = results["graphfuzzer"].total_coverage
    lemon = results["lemon"].total_coverage
    # Shape check: NNSmith leads clearly on GraphRT (the paper's 1.8x margin
    # on ONNXRuntime); on DeepC the paper itself reports a near-tie (1.08x),
    # so at this scaled-down budget a small tolerance is allowed.
    if compiler == "graphrt":
        assert nnsmith > graphfuzzer
        assert nnsmith > lemon
    else:
        assert nnsmith >= 0.85 * max(graphfuzzer, lemon)
