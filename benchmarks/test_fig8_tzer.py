"""Figure 8: NNSmith vs the Tzer baseline on the DeepC (TVM-analogue) compiler.

Paper result: graph-level fuzzing (NNSmith) covers 1.4x more branches than
the IR-level Tzer overall and vastly more of the pass files, but Tzer keeps a
non-trivial set of unique low-level branches because some low-level behaviour
is not reachable from the graph level.
"""

from benchmarks.conftest import COVERAGE_ITERATIONS
from repro.experiments import (
    make_case_generator,
    run_coverage_campaign,
    run_tzer_campaign,
    unique_counts,
)
from repro.experiments.venn import format_venn_table


def test_fig8_nnsmith_vs_tzer(benchmark):
    def campaign():
        nnsmith = run_coverage_campaign(
            make_case_generator("nnsmith", seed=4), "deepc",
            max_iterations=COVERAGE_ITERATIONS, seed=4)
        tzer = run_tzer_campaign(max_iterations=COVERAGE_ITERATIONS * 2, seed=4)
        return nnsmith, tzer

    nnsmith, tzer = benchmark.pedantic(campaign, rounds=1, iterations=1)

    all_files = {"nnsmith": nnsmith.arcs, "tzer": tzer.arcs}
    pass_files = {"nnsmith": nnsmith.pass_arcs, "tzer": tzer.pass_arcs}
    print("\n[Figure 8a] all DeepC files")
    print(format_venn_table(all_files))
    print("[Figure 8b] pass-only files")
    print(format_venn_table(pass_files))

    # Shape checks: NNSmith wins overall and on pass files; Tzer still has
    # unique low-level branches.
    assert nnsmith.total_coverage > tzer.total_coverage
    assert nnsmith.pass_coverage > tzer.pass_coverage
    assert unique_counts(all_files)["tzer"] > 0
