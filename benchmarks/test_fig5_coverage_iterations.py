"""Figure 5: total branch coverage over the number of generated test cases.

Paper result: even though NNSmith generates fewer test cases per unit time
(constraint solving has a cost), its per-test-case coverage is higher than
the baselines', so the iteration-indexed curves still dominate.
"""

from benchmarks.conftest import COVERAGE_ITERATIONS
from repro.experiments import run_fuzzer_comparison
from repro.experiments.reporting import format_series


def test_fig5_coverage_over_test_cases(benchmark):
    results = benchmark.pedantic(
        run_fuzzer_comparison, args=("graphrt",),
        kwargs={"max_iterations": COVERAGE_ITERATIONS, "seed": 1},
        rounds=1, iterations=1)

    print("\n[Figure 5 / graphrt] coverage over generated test cases")
    for name, campaign in results.items():
        series = campaign.timeline.as_series("total")
        print(" ", format_series(name, series["iteration"], series["total"],
                                 "iteration", "arcs"))

    # Same iteration budget for everyone: NNSmith's per-case quality wins.
    assert results["nnsmith"].total_coverage >= results["graphfuzzer"].total_coverage
    assert results["nnsmith"].total_coverage > results["lemon"].total_coverage
