"""Additional ablations called out in DESIGN.md (not figures in the paper).

* insertion-mode ablation: forward-only vs backward-only vs mixed insertion;
* solver phase-saving ablation: incremental solving cost with and without
  phase saving (the repo's stand-in for Z3 incremental solving).
"""

import random

import pytest

from repro.core import GeneratorConfig, generate_model
from repro.errors import ReproError
from repro.solver import Solver


@pytest.mark.parametrize("forward_probability,label", [
    (1.0, "forward-only"),
    (0.0, "backward-only"),
    (0.5, "mixed"),
])
def test_ablation_insertion_mode(benchmark, forward_probability, label):
    def campaign():
        inputs = []
        nodes = []
        for seed in range(10):
            try:
                generated = generate_model(GeneratorConfig(
                    n_nodes=10, seed=seed, forward_probability=forward_probability))
            except ReproError:
                continue
            inputs.append(len(generated.input_names) + len(generated.weight_names))
            nodes.append(generated.n_nodes)
        return inputs, nodes

    inputs, nodes = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\n[ablation/insertion {label}] avg placeholders "
          f"{sum(inputs) / len(inputs):.1f}, avg nodes {sum(nodes) / len(nodes):.1f}")
    assert nodes and all(count >= 1 for count in nodes)


@pytest.mark.parametrize("phase_saving", [True, False])
def test_ablation_solver_phase_saving(benchmark, phase_saving):
    def incremental_workload():
        solver = Solver(seed=0, phase_saving=phase_saving)
        rng = random.Random(0)
        variables = [solver.int_var(f"v{i}", 1, 64) for i in range(30)]
        accepted = 0
        for index in range(1, 30):
            lhs, rhs = variables[index - 1], variables[index]
            accepted += int(solver.try_add_constraints(
                [rhs >= lhs, rhs <= lhs + rng.randint(1, 4)]))
        return accepted, solver.stats["nodes"]

    accepted, nodes = benchmark.pedantic(incremental_workload, rounds=1, iterations=1)
    print(f"\n[ablation/solver phase_saving={phase_saving}] "
          f"{accepted} incremental additions, {nodes} search nodes")
    assert accepted == 29
