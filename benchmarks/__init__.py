"""Benchmark harness regenerating the paper's tables and figures."""
