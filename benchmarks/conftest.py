"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
budget (seconds instead of the paper's 4-hour campaigns) and prints the
regenerated rows/series so they can be compared with the paper side by side.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
tables.
"""

from __future__ import annotations

import pytest

#: Iteration budgets shared by the coverage-style campaigns.  Small enough to
#: keep the whole benchmark suite to a few minutes, large enough that the
#: relative ordering of the fuzzers is stable.
COVERAGE_ITERATIONS = 25
BUG_STUDY_ITERATIONS = 120
ABLATION_ITERATIONS = 25


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast end-to-end checks (run with `make smoke` / `pytest -m smoke`)")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
