"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
budget (seconds instead of the paper's 4-hour campaigns) and prints the
regenerated rows/series so they can be compared with the paper side by side.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
tables.

Marker registration and the run-exactly-once benchmark adapter are shared
with ``tests/conftest.py`` via :mod:`repro.testing`.
"""

from __future__ import annotations

import pytest

from repro.testing import register_markers, run_once

#: Iteration budgets shared by the coverage-style campaigns.  Small enough to
#: keep the whole benchmark suite to a few minutes, large enough that the
#: relative ordering of the fuzzers is stable.
COVERAGE_ITERATIONS = 25
BUG_STUDY_ITERATIONS = 120
ABLATION_ITERATIONS = 25


def pytest_configure(config):
    register_markers(config)


@pytest.fixture
def once(benchmark):
    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
