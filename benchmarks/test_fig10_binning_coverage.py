"""Figure 10: branch-coverage impact of attribute binning.

Paper result: binning improves unique branch coverage by 2.2x (ONNXRuntime)
and 1.8x (TVM) while the total coverage gain is small (it targets hard-to-hit
branches).
"""

import pytest

from benchmarks.conftest import ABLATION_ITERATIONS
from repro.experiments import run_binning_coverage, unique_counts
from repro.experiments.venn import format_venn_table


@pytest.mark.parametrize("compiler", ["graphrt", "deepc"])
def test_fig10_binning_coverage(benchmark, compiler):
    result = benchmark.pedantic(
        run_binning_coverage, args=(compiler,),
        kwargs={"max_iterations": ABLATION_ITERATIONS, "seed": 5},
        rounds=1, iterations=1)

    sets = result.coverage_sets()
    print(f"\n[Figure 10 / {compiler}]")
    print(format_venn_table(sets))
    print("  unique:", unique_counts(sets))

    with_binning = result.with_binning.total_coverage
    without_binning = result.without_binning.total_coverage
    # Binning never hurts total coverage by much and usually helps; the
    # scaled-down check only requires it not to collapse coverage.
    assert with_binning >= 0.9 * without_binning
