"""Figure 9: unique operator instances with and without attribute binning.

Paper result: binning yields 2.07x more unique operator instances overall,
with the largest gains on attribute-heavy operators.
"""

from benchmarks.conftest import ABLATION_ITERATIONS
from repro.experiments import run_instance_diversity
from repro.experiments.reporting import format_ratio_bars


def test_fig9_unique_operator_instances(benchmark):
    result = benchmark.pedantic(
        run_instance_diversity,
        kwargs={"iterations": ABLATION_ITERATIONS, "n_nodes": 10, "seed": 0},
        rounds=1, iterations=1)

    ratio = result.overall_ratio()
    print("\n[Figure 9] unique operator instances "
          f"(binning: {result.unique_instances(True)}, "
          f"base: {result.unique_instances(False)}, ratio {ratio:.2f}x)")
    print(format_ratio_bars(result.normalized_ratio_by_op(),
                            title="  per-operator improvement"))

    # Shape check: binning increases operator-instance diversity.
    assert ratio > 1.0
