"""§2.3 / §3.3 statistics: NaN/Inf frequency and search overhead.

Paper results: 56.8% of 20-node models hit NaN/Inf with default random
weights; gradient search succeeds on ~98% of models and its runtime is a
small fraction (~4%) of model-generation time.
"""

import time

import numpy as np

from repro.core import GeneratorConfig, generate_model, search_values
from repro.experiments import measure_nan_rate


def test_nan_rate_with_default_initialization(benchmark):
    result = benchmark.pedantic(
        measure_nan_rate, kwargs={"n_nodes": 20, "n_models": 15, "seed": 0},
        rounds=1, iterations=1)
    print(f"\n[§2.3] {result.exceptional_models}/{result.n_models} "
          f"({result.rate * 100:.1f}%) 20-node models hit NaN/Inf with "
          "default-initialized values (paper: 56.8%)")
    # Shape check: the problem the paper motivates actually occurs.
    assert result.rate > 0.1


def test_search_time_vs_generation_time(benchmark):
    def measure():
        generation_time = 0.0
        search_time = 0.0
        successes = 0
        count = 10
        for seed in range(count):
            start = time.monotonic()
            generated = generate_model(GeneratorConfig(n_nodes=10, seed=seed))
            generation_time += time.monotonic() - start
            result = search_values(generated.model, rng=np.random.default_rng(seed),
                                   time_budget=0.064)
            search_time += result.elapsed
            successes += int(result.success)
        return generation_time / count, search_time / count, successes / count

    gen_ms, search_ms, success = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n[§3.3] generation {gen_ms * 1000:.0f} ms/model, "
          f"gradient search {search_ms * 1000:.1f} ms/model "
          f"({search_ms / gen_ms * 100:.1f}% of generation), "
          f"success rate {success * 100:.0f}% (paper: 83 ms, 3.5 ms, 98%)")
    assert search_ms < gen_ms
    assert success >= 0.7
