"""Table 3 and §5.4: bug distribution, reachability and tool comparison.

Paper results: 72 bugs total (TVM 40, ONNXRuntime 12, TensorRT 10, PyTorch
exporter 10); transformation bugs dominate (43); 49 of 72 bugs cannot be
triggered by LEMON's or GraphFuzzer's designs; in a same-budget run NNSmith
triggers dozens of unique crashes while the baselines trigger at most one.
"""

import pytest

from benchmarks.conftest import BUG_STUDY_ITERATIONS
from repro.compilers.bugs import all_bugs
from repro.experiments import crash_comparison, reachability_analysis, run_bug_study
from repro.experiments.reporting import format_table

# The bug-study campaigns are the slowest benchmarks in the suite; they run
# in the full tier (`make test-all`) but not the default `make test`.
pytestmark = [pytest.mark.slow, pytest.mark.campaign]


def test_table3_bug_distribution(benchmark):
    table = benchmark.pedantic(
        run_bug_study,
        kwargs={"max_iterations": BUG_STUDY_ITERATIONS, "n_nodes": 10, "seed": 0},
        rounds=1, iterations=1)

    rows = table.rows()
    crash, semantic = table.crash_semantic_split()
    print("\n[Table 3] seeded bugs found by the NNSmith campaign "
          f"({table.count()}/{len(all_bugs())} seeded bugs, "
          f"{crash} crash / {semantic} semantic)")
    print(format_table(rows, ["system", "transformation", "conversion",
                              "unclassified", "total"]))

    deepc_row = next(row for row in rows if row["system"] == "DeepC")
    total_row = rows[-1]
    # Shape checks mirroring the paper's distribution:
    assert table.count() >= 6
    assert deepc_row["total"] == max(row["total"] for row in rows[:-1])
    assert total_row["transformation"] >= total_row["unclassified"]


def test_design_reachability(benchmark):
    analysis = benchmark.pedantic(reachability_analysis, rounds=1, iterations=1)
    print("\n[§5.4] design-level reachability of the seeded bug population")
    for key, value in analysis.items():
        print(f"  {key}: {value}")
    # Paper: 49/72 (68%) of bugs are unreachable by the baseline designs.
    assert analysis["unreachable_by_baselines"] >= 0.5 * analysis["total_bugs"]
    assert analysis["nnsmith"] > analysis["graphfuzzer"] >= analysis["lemon"]


def test_same_budget_crash_comparison(benchmark):
    result = benchmark.pedantic(
        crash_comparison, kwargs={"max_iterations": 40, "seed": 1, "n_nodes": 10},
        rounds=1, iterations=1)
    print("\n[§5.4] unique crashes within the same budget")
    for fuzzer, per_compiler in result.unique_crashes.items():
        found = len(result.seeded_found.get(fuzzer, ()))
        print(f"  {fuzzer:<12} {per_compiler}  (seeded bugs hit: {found})")
    nnsmith_total = sum(result.unique_crashes["nnsmith"].values())
    for baseline in ("graphfuzzer", "lemon"):
        assert nnsmith_total >= sum(result.unique_crashes[baseline].values())
    assert len(result.seeded_found["nnsmith"]) >= len(result.seeded_found["lemon"])
