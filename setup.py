"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` also works on environments without the ``wheel``
package (legacy ``setup.py develop`` editable installs).
"""

from setuptools import setup

setup()
