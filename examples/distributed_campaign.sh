#!/usr/bin/env bash
# Distributed campaign walkthrough: one coordinator, two socket workers.
#
# Everything runs on localhost here, but the pieces are exactly what a
# multi-host deployment uses: `serve` is the coordinator service, each
# `worker` is one fleet member on any machine that can reach it, and
# `status` is a point-in-time snapshot client.  Swap 127.0.0.1 for a real
# hostname and the same commands span machines.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

PORT=7333
CKPT=$(mktemp -u /tmp/fabric-campaign-XXXX.ckpt.json)

# 1. The coordinator: binds the port, waits for 2 workers, leases matrix
#    cells, folds results, streams checkpoints.  --fault-tolerance
#    defaults to `requeue` under serve: worker death mid-lease requeues
#    the unfinished iterations on the survivors (findings unchanged —
#    iterations are seeded purely from (config, iteration)).
#    --linger keeps the final status queryable after the campaign ends.
python -m repro.campaign serve --host 127.0.0.1 --port "$PORT" \
    --iterations 24 --workers 2 --shards 2 --seed 13 \
    --min-workers 2 --checkpoint "$CKPT" --linger 5 --quiet &
SERVE_PID=$!
sleep 1

# 2. The fleet: each worker connects, handshakes (protocol-versioned),
#    imports the campaign's compiler factory by name, and executes leases,
#    streaming per-iteration results and heartbeats back.
python -m repro.campaign worker --connect "127.0.0.1:$PORT" --name worker-a &
python -m repro.campaign worker --connect "127.0.0.1:$PORT" --name worker-b &

# 3. Watch it run: the status endpoint answers on the same port with
#    per-cell progress, novelty-per-second, cache hit rates, findings
#    count, and the worker roster with heartbeat ages.
sleep 2
python -m repro.campaign status --connect "127.0.0.1:$PORT" || true

wait "$SERVE_PID"
echo
echo "Campaign checkpoint (resumable under ANY transport — local pool,"
echo "in-process, or another socket fleet): $CKPT"
