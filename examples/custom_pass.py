"""Register a custom compiler pass and fuzz it inside sampled pipelines.

The shared pipeline layer (`repro.compilers.pipeline`) treats user passes
exactly like the builtin ones: register a `PipelinePass` subclass into a
stage and it joins that stage's samplable pool — `random:<k>@<seed>`
pipelines will draw it alongside (and in arbitrary order with) the stock
passes, which is precisely how pass-ordering bugs in *your* pass get found.
User passes never join the canonical `O<k>` specs, so default compilations
are unaffected.

Run::

    PYTHONPATH=src python examples/custom_pass.py
"""

from repro.compilers.base import CompileOptions
from repro.compilers.bugs import BugConfig
from repro.compilers.graphrt.compiler import GraphRTCompiler
from repro.compilers.pipeline import (PipelinePass, PipelineSpec,
                                      register_pass, sample_spec)
from repro.graph.builder import GraphBuilder


class StripIdentityChains(PipelinePass):
    """Rewrite Identity(Identity(x)) chains down to a single Identity."""

    def run(self, model, ctx):
        changed = False
        producers = {out: node for node in model.nodes for out in node.outputs}
        for node in model.nodes:
            if node.op != "Identity":
                continue
            producer = producers.get(node.inputs[0])
            if producer is not None and producer.op == "Identity":
                node.inputs[0] = producer.inputs[0]
                changed = True
        if changed:
            model.prune_dead_nodes()
        return changed


register_pass("graphrt", StripIdentityChains)


def _chain_model():
    builder = GraphBuilder("chains")
    x = builder.input([2, 4])
    value = builder.op1("Identity", [x])
    value = builder.op1("Identity", [value])
    value = builder.op1("Relu", [value])
    builder.output(value)
    return builder.build()


def main():
    # 1. Run the pass explicitly in a hand-written pipeline.
    spec = PipelineSpec.from_stage_map(
        "strip+dce", {"graphrt": ["StripIdentityChains",
                                  "DeadCodeElimination"]})
    compiler = GraphRTCompiler(CompileOptions(bugs=BugConfig.none(),
                                              pipeline=spec))
    compiled = compiler.compile_model(_chain_model())
    print("applied:", compiled.applied_passes)
    print("modified by:", compiled.modified_by)

    # 2. Sampled pipelines draw user passes too: count how often ours
    #    appears (and where) across a few deterministic draws.
    draws = [sample_spec(7, index).passes("graphrt") for index in range(8)]
    hits = [d.index("StripIdentityChains") for d in draws
            if "StripIdentityChains" in d]
    print(f"sampled into {len(hits)}/8 pipelines at positions {hits}")


if __name__ == "__main__":
    main()
