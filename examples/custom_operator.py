"""Extending the fuzzer with a new operator specification.

The paper emphasizes that operator specifications are a few lines of code
(§3.1, §4).  This example adds a ``Hardswish`` operator end to end:

1. register its kind and reference kernel / shape rule / VJP,
2. write its :class:`AbsOpBase` specification (2 lines of real content),
3. generate models that use it and differentially test a compiler.
"""

import numpy as np

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.core import DifferentialTester, GeneratorConfig, generate_model, specs_for_ops
from repro.core.op_spec import ElementwiseUnary
from repro.ops.registry import OpCategory, register_op
from repro.ops.semantics import kernel
from repro.ops.shape_infer import rule
from repro.autodiff.vjp import vjp


# --- 1. the operator itself: kernel, shape rule, gradient ----------------- #
register_op("Hardswish", OpCategory.elemwise, 1)


@kernel("Hardswish")
def _hardswish_kernel(attrs, inputs):
    (x,) = inputs
    return [(x * np.clip(x + 3.0, 0.0, 6.0) / 6.0).astype(
        x.dtype if x.dtype.kind == "f" else np.float64)]


@rule("Hardswish")
def _hardswish_rule(node, input_types):
    return [input_types[0]]


@vjp("Hardswish")
def _hardswish_vjp(node, inputs, outputs, grads, proxy):
    (x,), (g,) = inputs, grads
    slope = np.where(x <= -3.0, 0.0, np.where(x >= 3.0, 1.0, (2.0 * x + 3.0) / 6.0))
    return [g * slope]


# --- 2. the NNSmith specification (the part users write, §3.1) ------------ #
class HardswishSpec(ElementwiseUnary):
    op_kind = "Hardswish"


# --- 3. use it ------------------------------------------------------------- #
def main() -> None:
    pool = specs_for_ops(["Conv2d", "Add", "Relu", "Sigmoid", "MaxPool2d",
                          "Reshape", "Concat"]) + [HardswishSpec]
    for seed in range(3):
        generated = generate_model(GeneratorConfig(n_nodes=8, seed=seed, op_pool=pool))
        uses = sum(node.op == "Hardswish" for node in generated.model.nodes)
        tester = DifferentialTester(
            [GraphRTCompiler(CompileOptions(bugs=BugConfig.none()))],
            bugs=BugConfig.none())
        case = tester.run_case(generated.model)
        verdict = case.verdicts[0]
        print(f"seed {seed}: {generated.n_nodes} ops "
              f"({uses} Hardswish), GraphRT verdict: {verdict.status or 'ok'}")


if __name__ == "__main__":
    main()
