"""Write your own generation strategy in ~20 lines.

A strategy is anything that turns ``(seed, iteration)`` into a
``GeneratedModel`` — register it under a name and every engine entry point
(the serial ``Fuzzer``, the sharded/matrix parallel campaign, the CLI's
``--generators`` axis and the experiment drivers) can run it, checkpoint
it and compare it against NNSmith and the baselines.

Run with:  PYTHONPATH=src python examples/custom_strategy.py
"""

import random

import numpy as np

# --- the ~20 lines -------------------------------------------------------
from repro.core import GenerationStrategy, StrategyCapabilities, register_strategy
from repro.core.strategy import wrap_model
from repro.graph.builder import GraphBuilder


@register_strategy("mlp-stacks")
class MlpStackStrategy(GenerationStrategy):
    """Random-depth stacks of Gemm/Relu layers (a tiny custom generator)."""

    name = "mlp-stacks"
    capabilities = StrategyCapabilities()  # no op-pool use, no value search

    def __init__(self, config):
        self.width = config.generator.n_nodes  # honour a config knob

    def generate(self, seed, iteration):
        rng = random.Random(seed)  # purity: everything derives from `seed`
        weights = np.random.default_rng(seed % (1 << 32))
        builder = GraphBuilder("mlp_stack")
        value, width = builder.input([2, self.width]), self.width
        for _ in range(rng.randint(1, 4)):
            nxt = rng.choice([4, 8, self.width])
            w = builder.weight(weights.normal(0, 0.4, size=(width, nxt))
                               .astype(np.float32))
            value = builder.op1("Relu", [builder.op1("Gemm", [value, w])])
            width = nxt
        builder.output(value)
        return wrap_model(builder.build())
# -------------------------------------------------------------------------


def main():
    from repro.core import FuzzerConfig, GeneratorConfig, run_parallel_campaign

    config = FuzzerConfig(generator=GeneratorConfig(n_nodes=8),
                          max_iterations=10, seed=1)
    # Race the custom strategy against NNSmith through the one campaign
    # engine: same shards, same checkpointing, per-generator provenance.
    result = run_parallel_campaign(config=config, n_workers=1,
                                   generators=["nnsmith", "mlp-stacks"])
    print(f"{result.generated_models} models over {result.iterations} "
          f"iterations; findings per generator:")
    for key, cell in sorted(result.cells.items()):
        print(f"  {key:<40} {len(cell.report_keys)} report(s), "
              f"{len(cell.seeded_bugs_found)} seeded bug(s)")


if __name__ == "__main__":
    main()
