"""A complete fuzzing campaign against the three compilers under test.

This is the workload the paper's introduction motivates: generate diverse
valid models, give them numerically valid inputs, and differentially test
several DL compilers, collecting deduplicated bug reports.

Run with:  python examples/fuzz_campaign.py [iterations]
"""

import sys

from repro.compilers import (
    CompileOptions,
    DeepCCompiler,
    GraphRTCompiler,
    TurboCompiler,
)
from repro.compilers.bugs import BugConfig, bug_spec
from repro.core import Fuzzer, FuzzerConfig, GeneratorConfig


def main(iterations: int = 150) -> None:
    bugs = BugConfig.all()  # every seeded bug is live, as in a real campaign
    compilers = [
        GraphRTCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        DeepCCompiler(CompileOptions(opt_level=2, bugs=bugs)),
        TurboCompiler(CompileOptions(opt_level=2, bugs=bugs)),
    ]
    fuzzer = Fuzzer(compilers, FuzzerConfig(
        generator=GeneratorConfig(n_nodes=10),
        max_iterations=iterations,
        value_search_method="gradient_proxy",
        bugs=bugs,
        seed=7,
    ))

    print(f"Fuzzing {', '.join(c.name for c in compilers)} "
          f"for {iterations} iterations ...")
    result = fuzzer.run()

    print(f"\n{result.generated_models} models generated in {result.elapsed:.1f}s "
          f"({result.numerically_valid_models} numerically valid)")
    print(f"{len(result.reports)} deduplicated findings, "
          f"{len(result.seeded_bugs_found)} distinct seeded bugs hit:\n")
    for report in result.reports:
        print(f"  [{report.compiler:<7}] {report.status:<8} ({report.phase}) "
              f"{report.message.splitlines()[0][:90]}")
    print("\nGround-truth seeded bugs found:")
    for bug_id in sorted(result.seeded_bugs_found):
        spec = bug_spec(bug_id)
        print(f"  {bug_id:<38} {spec.system}/{spec.phase}/{spec.symptom}")
    print("\nPer-system counts:", result.bugs_by_system())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
