"""A complete fuzzing campaign against the three compilers under test.

This is the workload the paper's introduction motivates: generate diverse
valid models, give them numerically valid inputs, and differentially test
several DL compilers, collecting deduplicated bug reports.

The campaign can run serially (one ``Fuzzer`` loop), sharded across worker
processes, or as a **matrix campaign** over compiler subsets × optimization
levels (:mod:`repro.core.parallel`):

* the iteration budget of every compiler-set × opt-level combination is
  split evenly over N shards; each shard's seed comes from
  ``SeedSequence((campaign_seed, shard_index))`` and every iteration's
  generator and value-search RNGs from
  ``SeedSequence((shard_seed, generator_seed, iteration, stream))`` — so
  shards explore disjoint model streams while every *combination* replays
  the identical streams (apples-to-apples per-backend comparison);
* workers lease work from a shared queue; with ``adaptive=True`` a cell's
  budget is split into chunks so a worker whose cell finishes early steals
  the remaining iterations of slower cells;
* every completed iteration is streamed to the coordinator, which folds it
  into per-cell results (global report dedup via ``CampaignResult.merge``)
  and, when a checkpoint path is set, persists it — a campaign killed
  mid-shard resumes from the exact iteration it reached
  (see ``python -m repro.campaign --checkpoint ...``);
* the merged result carries per-cell provenance (``result.cells``), which
  ``repro.experiments.venn.campaign_cell_sets`` slices into per-backend /
  per-opt-level bug Venn diagrams.

Run with:  python examples/fuzz_campaign.py [iterations] [workers] [--matrix]
"""

import sys

from repro.compilers.bugs import BugConfig, bug_spec
from repro.core import (
    Fuzzer,
    FuzzerConfig,
    GeneratorConfig,
    default_compiler_factory,
    first_line,
    run_parallel_campaign,
)
from repro.experiments.venn import campaign_cell_sets, format_venn_table


def main(iterations: int = 150, workers: int = 1, matrix: bool = False) -> None:
    bugs = BugConfig.all()  # every seeded bug is live, as in a real campaign
    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=10),
        max_iterations=iterations,
        value_search_method="gradient_proxy",
        bugs=bugs,
        seed=7,
    )

    if matrix:
        # Race two compiler subsets over the same model streams at O0 and
        # O2; the per-cell provenance feeds the Venn analysis below.
        print(f"Matrix campaign: [graphrt+deepc | turbo] x O[0,2], "
              f"{iterations} iterations per combination, "
              f"{max(workers, 1)} worker(s) ...")
        result = run_parallel_campaign(
            config=config,
            n_workers=max(workers, 1),
            compiler_sets=[["graphrt", "deepc"], ["turbo"]],
            opt_levels=[0, 2],
            adaptive=True,
        )
    elif workers > 1:
        print(f"Fuzzing graphrt, deepc, turbo for {iterations} iterations "
              f"across {workers} worker processes ...")
        result = run_parallel_campaign(config=config, n_workers=workers)
    else:
        compilers = default_compiler_factory(bugs)
        fuzzer = Fuzzer(compilers, config)
        print(f"Fuzzing {', '.join(c.name for c in compilers)} "
              f"for {iterations} iterations ...")
        result = fuzzer.run()

    print(f"\n{result.generated_models} models generated in {result.elapsed:.1f}s "
          f"({result.numerically_valid_models} numerically valid)")
    print(f"{len(result.reports)} deduplicated findings, "
          f"{len(result.seeded_bugs_found)} distinct seeded bugs hit:\n")
    for report in result.reports:
        print(f"  [{report.compiler:<7}] {report.status:<8} ({report.phase}) "
              f"{first_line(report.message, 90)}")
    print("\nGround-truth seeded bugs found:")
    for bug_id in sorted(result.seeded_bugs_found):
        spec = bug_spec(bug_id)
        print(f"  {bug_id:<38} {spec.system}/{spec.phase}/{spec.symptom}")
    print("\nPer-system counts:", result.bugs_by_system())
    if matrix:
        print()
        print(format_venn_table(campaign_cell_sets(result, by="compiler_set"),
                                title="Seeded bugs by compiler subset:"))
        print()
        print(format_venn_table(campaign_cell_sets(result, by="opt_level"),
                                title="Seeded bugs by opt level:"))


if __name__ == "__main__":
    positional = [arg for arg in sys.argv[1:] if not arg.startswith("--")]
    main(int(positional[0]) if positional else 150,
         int(positional[1]) if len(positional) > 1 else 1,
         matrix="--matrix" in sys.argv[1:])
