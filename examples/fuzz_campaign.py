"""A complete fuzzing campaign against the three compilers under test.

This is the workload the paper's introduction motivates: generate diverse
valid models, give them numerically valid inputs, and differentially test
several DL compilers, collecting deduplicated bug reports.

The campaign can run serially (one ``Fuzzer`` loop) or sharded across
worker processes via :mod:`repro.core.parallel`:

* the total iteration budget is split evenly over N shards;
* each shard's seed comes from ``SeedSequence((campaign_seed, shard_index))``
  and each iteration's generator seed from
  ``SeedSequence((shard_seed, generator_seed, iteration))``, so shards — and
  nearby campaign seeds — explore disjoint model streams;
* workers stream findings back to a coordinator that performs global
  dedup and merges the shard results with ``CampaignResult.merge``;
* passing a checkpoint path persists each completed shard as JSON, and
  re-running the same campaign resumes from the checkpoint, executing only
  the missing shards (see ``python -m repro.campaign --checkpoint ...``).

Run with:  python examples/fuzz_campaign.py [iterations] [workers]
"""

import sys

from repro.compilers.bugs import BugConfig, bug_spec
from repro.core import (
    Fuzzer,
    FuzzerConfig,
    GeneratorConfig,
    default_compiler_factory,
    first_line,
    run_parallel_campaign,
)


def main(iterations: int = 150, workers: int = 1) -> None:
    bugs = BugConfig.all()  # every seeded bug is live, as in a real campaign
    config = FuzzerConfig(
        generator=GeneratorConfig(n_nodes=10),
        max_iterations=iterations,
        value_search_method="gradient_proxy",
        bugs=bugs,
        seed=7,
    )

    if workers > 1:
        print(f"Fuzzing graphrt, deepc, turbo for {iterations} iterations "
              f"across {workers} worker processes ...")
        result = run_parallel_campaign(config=config, n_workers=workers)
    else:
        compilers = default_compiler_factory(bugs)
        fuzzer = Fuzzer(compilers, config)
        print(f"Fuzzing {', '.join(c.name for c in compilers)} "
              f"for {iterations} iterations ...")
        result = fuzzer.run()

    print(f"\n{result.generated_models} models generated in {result.elapsed:.1f}s "
          f"({result.numerically_valid_models} numerically valid)")
    print(f"{len(result.reports)} deduplicated findings, "
          f"{len(result.seeded_bugs_found)} distinct seeded bugs hit:\n")
    for report in result.reports:
        print(f"  [{report.compiler:<7}] {report.status:<8} ({report.phase}) "
              f"{first_line(report.message, 90)}")
    print("\nGround-truth seeded bugs found:")
    for bug_id in sorted(result.seeded_bugs_found):
        spec = bug_spec(bug_id)
        print(f"  {bug_id:<38} {spec.system}/{spec.phase}/{spec.symptom}")
    print("\nPer-system counts:", result.bugs_by_system())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150,
         int(sys.argv[2]) if len(sys.argv) > 2 else 1)
