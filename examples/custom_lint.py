"""Extend both static-analysis tools with project-specific checks.

The analysis layer (`repro.analysis`) has two symmetric extension points:

* `register_lint_rule(name)` adds an AST rule to the contract linter —
  it runs alongside the builtin rules in `lint_file`/`lint_paths` and in
  `python -m repro.analysis.lint`, and its findings participate in the
  same ratchet baseline buckets (`<rule>:<path>`).
* `register_invariant(stage, fn)` adds a well-formedness invariant to the
  pass-boundary IR verifier — once registered it runs at every pass
  boundary of every `--verify-passes` compilation of that stage, after
  the builtin invariants.

Run::

    PYTHONPATH=src python examples/custom_lint.py
"""

import ast
import tempfile

from repro.analysis import register_invariant, register_lint_rule, verify_ir
from repro.analysis.lint import LintFinding, lint_file
from repro.graph.builder import GraphBuilder


# --------------------------------------------------------------------------- #
# 1. A custom lint rule: no bare `assert` in library code (asserts vanish
#    under `python -O`, so contracts enforced by them silently disappear).
# --------------------------------------------------------------------------- #
@register_lint_rule("no-bare-assert")
def _no_bare_assert(tree, path):
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert) and node.msg is None:
            yield LintFinding("no-bare-assert", path, node.lineno,
                              "bare assert without a message in library code")


# --------------------------------------------------------------------------- #
# 2. A custom verifier invariant: this project bans Dropout from ever
#    surviving into a compiled graph (inference-only engine).
# --------------------------------------------------------------------------- #
def _no_dropout(model):
    return [f"inference graph contains training-only op: "
            f"node {node.name!r} is a Dropout"
            for node in model.nodes if node.op == "Dropout"]


register_invariant("graphrt", _no_dropout, name="no-dropout")


def main():
    # The lint rule fires on offending source ...
    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as fh:
        fh.write("def f(x):\n    assert x\n    return x\n")
    for finding in lint_file(fh.name):
        print("lint:", finding.format())

    # ... and the invariant fires on offending IR, through the very same
    # verify_ir the pass-boundary hook calls during --verify-passes runs.
    builder = GraphBuilder("train_leftover")
    x = builder.input([2, 4])
    builder.output(builder.op1("Dropout", [x], ratio=0.5))
    for problem in verify_ir("graphrt", builder.build()):
        print("verify:", problem)


if __name__ == "__main__":
    main()
