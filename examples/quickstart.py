"""Quickstart: generate one valid DNN model, run it, and inspect it.

This is the smallest useful tour of the public API:

1. generate a random-but-valid computation graph with the constraint-guided
   generator (Algorithm 1 + attribute binning),
2. find numerically valid inputs/weights with gradient-guided search
   (Algorithm 3),
3. run the model on the reference interpreter and on one compiler under test,
   and check that they agree.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.compilers import CompileOptions, GraphRTCompiler
from repro.compilers.bugs import BugConfig
from repro.core import GeneratorConfig, generate_model, search_values
from repro.runtime import Interpreter, export_model


def main() -> None:
    # 1. Generate a 10-operator model (deterministic for a fixed seed).
    generated = generate_model(GeneratorConfig(n_nodes=10, seed=2024))
    model = generated.model
    print("Generated model:")
    print(model.summary())
    print()

    # 2. Search for inputs/weights that avoid NaN/Inf anywhere in the graph.
    search = search_values(model, method="gradient_proxy",
                           rng=np.random.default_rng(0), time_budget=0.25)
    print(f"Value search: success={search.success} after {search.iterations} "
          f"iteration(s) in {search.elapsed * 1000:.1f} ms")
    model = search.apply_weights(model)

    # 3. Run the oracle and a compiler under test on the same inputs.
    oracle = Interpreter().run_detailed(model, search.inputs)
    print(f"Oracle run numerically valid: {oracle.numerically_valid}")

    exported = export_model(model, bugs=BugConfig.none())
    compiler = GraphRTCompiler(CompileOptions(opt_level=2, bugs=BugConfig.none()))
    compiled = compiler.compile_model(exported)
    outputs = compiled.run(search.inputs)

    print(f"GraphRT applied passes: {', '.join(compiled.applied_passes)}")
    for name, expected in oracle.outputs.items():
        matches = np.allclose(np.asarray(expected, dtype=np.float64),
                              np.asarray(outputs[name], dtype=np.float64),
                              rtol=1e-3, atol=1e-4)
        print(f"  output {name}: shapes {expected.shape} — "
              f"{'MATCH' if matches else 'MISMATCH'}")


if __name__ == "__main__":
    main()
