"""Gradient-guided value search on a deliberately hostile model.

Builds the paper's "M3-style" scenario: a model whose default random values
drive a vulnerable operator (Log of a shifted input) straight into NaN, so
differential testing would have to throw the test case away.  Random
re-sampling rarely fixes it; the gradient-guided search (Algorithm 3) does,
with and without proxy derivatives for comparison.

Run with:  python examples/value_search_demo.py
"""

import numpy as np

from repro.core.value_search import gradient_search, sampling_search
from repro.autodiff import DEFAULT_PROXY, NO_PROXY
from repro.graph.builder import GraphBuilder
from repro.runtime import Interpreter


def build_hostile_model():
    """Relu(x) - 6 feeds Log: the Relu zero-region needs proxy gradients."""
    builder = GraphBuilder("hostile")
    x = builder.input([8])
    shift = builder.weight(np.full(8, -6.0, dtype=np.float32))
    pre = builder.op1("Relu", [x])
    shifted = builder.op1("Add", [pre, shift])
    builder.op1("Log", [shifted])
    return builder.build()


def main() -> None:
    model = build_hostile_model()
    rng = np.random.default_rng(0)

    naive = Interpreter().run_detailed(
        model, {model.inputs[0]: rng.uniform(1, 9, 8).astype(np.float32)})
    print(f"naive random values numerically valid? {naive.numerically_valid}")

    for label, runner in [
        ("random sampling", lambda: sampling_search(
            model, np.random.default_rng(1), time_budget=0.05)),
        ("gradient (no proxy)", lambda: gradient_search(
            model, np.random.default_rng(1), time_budget=0.25, proxy=NO_PROXY)),
        ("gradient + proxy", lambda: gradient_search(
            model, np.random.default_rng(1), time_budget=0.25, proxy=DEFAULT_PROXY)),
    ]:
        result = runner()
        print(f"{label:<22} success={result.success!s:<5} "
              f"iterations={result.iterations:<4} time={result.elapsed * 1000:.1f} ms")
        if result.success:
            run = Interpreter().run_detailed(result.apply_weights(model), result.inputs)
            print(f"{'':<22} verified numerically valid: {run.numerically_valid}")


if __name__ == "__main__":
    main()
