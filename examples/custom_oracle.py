"""Write your own test oracle in ~20 lines.

An oracle is anything that turns ``(model, inputs)`` into a list of
``CompilerVerdict``s — register a factory under a name and every engine
entry point (the serial ``Fuzzer``, the sharded/matrix parallel campaign,
the CLI's ``--oracle``/``--oracles`` axis and the experiment drivers) can
run it, checkpoint it and race it against the built-ins
(``difftest``/``crash``/``shape``/``perf``/``gradcheck``).

Run with:  PYTHONPATH=src python examples/custom_oracle.py
"""

import numpy as np

# --- the ~20 lines -------------------------------------------------------
from repro.core.oracle import BaseOracle, register_oracle
from repro.core.difftest import CompilerVerdict


@register_oracle("finite")
class FiniteOutputsOracle(BaseOracle):
    """Flags compilers whose outputs contain NaN/Inf on *finite* inputs."""

    name = "finite"

    def evaluate(self, model, inputs, numerically_valid=None):
        from repro.runtime.exporter import export_model

        exported = export_model(model, bugs=self.bugs)
        verdicts = []
        for compiler in self.compilers:
            try:
                outputs = compiler.compile_model(exported).run(inputs)
            except Exception as exc:   # crashes look just like difftest's
                verdicts.append(CompilerVerdict(compiler.name, "crash",
                                                "execution", str(exc)))
                continue
            bad = [name for name, value in outputs.items()
                   if np.asarray(value).dtype.kind == "f"
                   and not np.all(np.isfinite(value))]
            verdicts.append(CompilerVerdict(
                compiler.name, "semantic" if bad else "ok",
                "execution" if bad else "",
                f"non-finite outputs: {bad}" if bad else ""))
        return verdicts
# -------------------------------------------------------------------------


def main():
    from repro.core import FuzzerConfig, GeneratorConfig, run_parallel_campaign

    config = FuzzerConfig(generator=GeneratorConfig(n_nodes=8),
                          max_iterations=10, seed=1)
    # Race the custom oracle against the built-ins through the one campaign
    # engine: identical model streams, per-oracle provenance.
    result = run_parallel_campaign(config=config, n_workers=1,
                                   oracles=["difftest", "finite"])
    print(f"{result.generated_models} models over {result.iterations} "
          f"iterations; findings per oracle:")
    for key, cell in sorted(result.cells.items()):
        print(f"  {key:<44} {len(cell.report_keys)} report(s), "
              f"{len(cell.seeded_bugs_found)} seeded bug(s)")


if __name__ == "__main__":
    main()
