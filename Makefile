PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all smoke smoke-coverage smoke-oracles smoke-pipelines \
	smoke-distributed smoke-verify lint-static lint-baseline benchmarks \
	table2 bench bench-transport

# Default tier: everything except tests marked `slow`.
test:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Tier-1: the full test + benchmark suite, including slow tests.
test-all:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end smoke: exercises the sharded/matrix parallel campaign path
# (2-worker ~10-iteration campaigns + the scaling benchmark) in well under
# a minute.
smoke:
	$(PYTHON) -m pytest -q -m smoke tests benchmarks

# Coverage-feedback smoke: scheduler equivalence (static/adaptive/coverage
# findings identical) plus the coverage-scheduling overhead benchmark.
smoke-coverage:
	$(PYTHON) -m pytest -q -m smoke tests/core/test_schedulers.py \
		benchmarks/test_scheduler_overhead.py

# Oracle-axis smoke: a tiny difftest/perf/gradcheck matrix campaign with
# per-oracle Venn slicing, plus the oracle + oracle-axis test suites
# (seed 29 reliably shows the perf-only and gradcheck-only seeded bugs).
smoke-oracles:
	$(PYTHON) -m repro.campaign --iterations 10 --workers 2 --shards 2 \
		--oracles difftest,perf,gradcheck --seed 29 \
		--deterministic --quiet
	$(PYTHON) -m pytest -q tests/core/test_perf_gradcheck_oracles.py \
		tests/core/test_oracle_axis_campaign.py

# Pipeline-axis smoke: a tiny canonical-vs-sampled pass-pipeline matrix
# campaign with per-pipeline Venn slicing (seed 117 reliably shows the
# seeded ordering-only bug in the sampled cell), plus the pipeline layer,
# pass-fixpoint, bisection and pipeline-axis test suites.
smoke-pipelines:
	$(PYTHON) -m repro.campaign --iterations 8 --workers 1 --shards 1 \
		--compilers graphrt --pipelines O0,O2,rand:14682586710177421089:1 \
		--seed 117 --nodes 8 --deterministic --quiet
	$(PYTHON) -m pytest -q tests/compilers/test_pipeline_layer.py \
		tests/compilers/test_pass_fixpoint.py \
		tests/experiments/test_pass_bisect.py \
		tests/core/test_pipeline_axis_campaign.py

# Pass-boundary verifier smoke: the same tiny serial campaign twice — with
# --verify-passes the seeded verifier-only bug (a provenance attribute the
# BiasSoftmaxFusion pass leaves on the fused node; bit-identical execution,
# invisible to every execution oracle) is found and attributed, without the
# flag the campaign is finding-for-finding identical minus that report
# (seed 276 reliably generates the Add→Softmax chain on iteration 1).
# Then the verifier, exclusivity and corpus-replay suites.
smoke-verify:
	$(PYTHON) -m repro.campaign --serial --workers 1 --iterations 2 \
		--nodes 8 --seed 276 --verify-passes --deterministic --quiet
	$(PYTHON) -m repro.campaign --serial --workers 1 --iterations 2 \
		--nodes 8 --seed 276 --deterministic --quiet
	$(PYTHON) -m pytest -q tests/analysis \
		"tests/core/test_corpus_replay.py::test_corpus_case_still_triggers_its_bug[graphrt-biassoftmax-fusion-note]"

# Contract linter over the engine sources, ratcheted against the committed
# baseline: fails on any finding above tools/lint_baseline.json, counts can
# only burn down.
lint-static:
	$(PYTHON) -m repro.analysis.lint src

# Rewrite the ratchet baseline to the current finding counts (after fixing
# findings, or when deliberately baselining new debt — justify in review).
lint-baseline:
	$(PYTHON) -m repro.analysis.lint src --update-baseline

# Distributed-fabric smoke: boot a real coordinator service on an ephemeral
# localhost port, join two socket workers over TCP, and assert the seeded
# bugs are found and reported by the live status endpoint.
smoke-distributed:
	$(PYTHON) tools/smoke_distributed.py --iterations 12 --seed 13

# Transport-overhead trajectory: the same seeded campaign on the local
# process pool vs a 2-worker localhost socket fleet — iterations/sec, mean
# lease round-trip latency and the socket/local overhead ratio (design
# target <= 1.2x).  Schema-validated by tests/test_bench_transport.py.
bench-transport:
	$(PYTHON) tools/bench_transport.py --iterations 24 \
		--output benchmarks/BENCH_8.json

# Hot-path perf trajectory: time generate/search/compile/oracle plus the
# compiled-plan sections (interpreter plain/compiled/batched, batched
# gradcheck, prefix hit rate) on a pinned small workload and write the
# iterations/sec point for this PR.  CI never thresholds these numbers
# (tests/test_bench_hot_path.py validates only the schema); the JSON is the
# trajectory future PRs append to.
bench:
	$(PYTHON) tools/bench_hot_path.py --iterations 40 \
		--output benchmarks/BENCH_9.json

# Regenerate the paper's tables/figures on scaled-down budgets.
benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Fuzzer-comparison summary (Table 2 analogue): one small multi-strategy
# generator-axis matrix campaign over the registry.  The matching regression
# test is `campaign` tier, so `make test` stays fast.
table2:
	$(PYTHON) -m repro.experiments.table2 36 2
