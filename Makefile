PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke benchmarks

# Tier-1: the full test + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end smoke: exercises the sharded parallel campaign path
# (2-worker ~10-iteration campaign + the scaling benchmark) in well under
# a minute.
smoke:
	$(PYTHON) -m pytest -q -m smoke tests benchmarks

# Regenerate the paper's tables/figures on scaled-down budgets.
benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
